package hash

import (
	"math"
	"math/rand"
	"testing"
)

func TestPolyEvalMatchesManual(t *testing.T) {
	// h(x) = 3 + 2x + 5x² evaluated at small points.
	p := Poly{coeffs: []uint64{3, 2, 5}}
	cases := []struct{ x, want uint64 }{
		{0, 3},
		{1, 10},
		{2, 27},
		{10, 523},
	}
	for _, c := range cases {
		if got := p.Eval(c.x); got != c.want {
			t.Errorf("Eval(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestPolyDeterministicPerSeed(t *testing.T) {
	a := NewPoly(4, rand.New(rand.NewSource(9)))
	b := NewPoly(4, rand.New(rand.NewSource(9)))
	for x := uint64(0); x < 100; x++ {
		if a.Eval(x) != b.Eval(x) {
			t.Fatalf("same-seed polynomials differ at %d", x)
		}
	}
}

func TestPolyUniform01Range(t *testing.T) {
	p := NewPoly(2, rand.New(rand.NewSource(3)))
	for x := uint64(0); x < 1000; x++ {
		u := p.Uniform01(x)
		if u < 0 || u >= 1 {
			t.Fatalf("Uniform01(%d) = %v out of [0,1)", x, u)
		}
	}
}

func TestPolyUniformityChiSquare(t *testing.T) {
	// Bucket 100k consecutive keys into 16 buckets; with a pairwise family
	// each bucket should hold ≈ 1/16 of keys. This is a smoke test for
	// gross non-uniformity, not a strict statistical test.
	p := NewPoly(2, rand.New(rand.NewSource(5)))
	const buckets, n = 16, 100000
	counts := make([]int, buckets)
	for x := uint64(0); x < n; x++ {
		counts[p.Bucket(x, buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Errorf("bucket %d count %d deviates more than 10%% from %v", b, c, want)
		}
	}
}

func TestPolySignBalance(t *testing.T) {
	p := NewPoly(4, rand.New(rand.NewSource(6)))
	var sum int64
	const n = 100000
	for x := uint64(0); x < n; x++ {
		s := p.Sign(x)
		if s != 1 && s != -1 {
			t.Fatalf("Sign returned %d", s)
		}
		sum += s
	}
	if math.Abs(float64(sum)) > 4*math.Sqrt(n) {
		t.Errorf("sign sum %d exceeds 4·sqrt(n); signs badly unbalanced", sum)
	}
}

func TestPolySignBucketConsistency(t *testing.T) {
	p := NewPoly(4, rand.New(rand.NewSource(7)))
	for x := uint64(0); x < 500; x++ {
		s1, b1 := p.SignBucket(x, 32)
		s2, b2 := p.SignBucket(x, 32)
		if s1 != s2 || b1 != b2 {
			t.Fatalf("SignBucket not deterministic at %d", x)
		}
		if b1 < 0 || b1 >= 32 {
			t.Fatalf("bucket %d out of range", b1)
		}
	}
}

func TestPolyPairwiseCollisionRate(t *testing.T) {
	// For a pairwise family, Pr[h(x) mod w == h(y) mod w] ≈ 1/w.
	rng := rand.New(rand.NewSource(8))
	const w = 64
	const trials = 20000
	collisions := 0
	for i := 0; i < trials; i++ {
		p := NewPoly(2, rng)
		if p.Bucket(1, w) == p.Bucket(2, w) {
			collisions++
		}
	}
	got := float64(collisions) / trials
	if math.Abs(got-1.0/w) > 0.01 {
		t.Errorf("pairwise collision rate = %v, want ≈ %v", got, 1.0/w)
	}
}

func TestEvalMultiMatchesHorner(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, deg := range []int{17, 33, 64, 129} {
		p := NewPoly(deg+1, rng)
		points := make([]uint64, deg)
		for i := range points {
			points[i] = rng.Uint64()
		}
		multi := p.EvalMulti(points)
		for i, x := range points {
			if want := p.Eval(x); multi[i] != want {
				t.Fatalf("deg %d: EvalMulti[%d] = %d, want %d", deg, i, multi[i], want)
			}
		}
	}
}

func TestEvalMultiSmallBatchFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := NewPoly(40, rng)
	points := []uint64{1, 2, 3}
	multi := p.EvalMulti(points)
	for i, x := range points {
		if multi[i] != p.Eval(x) {
			t.Fatalf("fallback mismatch at %d", i)
		}
	}
	if got := p.EvalMulti(nil); got != nil {
		t.Errorf("EvalMulti(nil) = %v, want nil", got)
	}
}

func TestEvalMultiDuplicatePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p := NewPoly(33, rng)
	points := make([]uint64, 32)
	for i := range points {
		points[i] = uint64(i % 4) // heavy duplication
	}
	multi := p.EvalMulti(points)
	for i, x := range points {
		if multi[i] != p.Eval(x) {
			t.Fatalf("duplicate-point mismatch at %d", i)
		}
	}
}

func TestPolyMulModInternals(t *testing.T) {
	// (x+1)(x+2) = x² + 3x + 2
	got := polyMul([]uint64{1, 1}, []uint64{2, 1})
	want := []uint64{2, 3, 1}
	if len(got) != len(want) {
		t.Fatalf("polyMul len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("polyMul[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// (x² + 3x + 2) mod (x+1) = 0
	rem := polyMod([]uint64{2, 3, 1}, []uint64{1, 1})
	if len(rem) != 1 || rem[0] != 0 {
		t.Errorf("polyMod = %v, want [0]", rem)
	}
	// x² mod (x+1) = 1 (since x ≡ −1)
	rem = polyMod([]uint64{0, 0, 1}, []uint64{1, 1})
	if len(rem) != 1 || rem[0] != 1 {
		t.Errorf("x² mod (x+1) = %v, want [1]", rem)
	}
}

func TestKaratsubaMatchesBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		a := make([]uint64, 70+rng.Intn(60))
		b := make([]uint64, 70+rng.Intn(60))
		for i := range a {
			a[i] = rng.Uint64() % Prime
		}
		for i := range b {
			b[i] = rng.Uint64() % Prime
		}
		fast := polyMul(a, b)
		slow := polyMulBasic(trim(a), trim(b))
		if len(fast) != len(slow) {
			t.Fatalf("length mismatch %d vs %d", len(fast), len(slow))
		}
		for i := range slow {
			if fast[i] != slow[i] {
				t.Fatalf("karatsuba mismatch at coeff %d", i)
			}
		}
	}
}

func TestFastDivisionMatchesBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 8; trial++ {
		a := make([]uint64, 300+rng.Intn(300))
		bb := make([]uint64, 100+rng.Intn(100))
		for i := range a {
			a[i] = rng.Uint64() % Prime
		}
		for i := range bb {
			bb[i] = rng.Uint64() % Prime
		}
		if bb[len(bb)-1] == 0 {
			bb[len(bb)-1] = 1
		}
		fast := polyMod(a, bb)
		slow := polyModBasic(a, bb)
		if len(fast) != len(slow) {
			t.Fatalf("trial %d: remainder length %d vs %d", trial, len(fast), len(slow))
		}
		for i := range slow {
			if fast[i] != slow[i] {
				t.Fatalf("trial %d: remainder mismatch at coeff %d", trial, i)
			}
		}
	}
}

func TestPolyInvSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := make([]uint64, 200)
	for i := range f {
		f[i] = rng.Uint64() % Prime
	}
	if f[0] == 0 {
		f[0] = 1
	}
	const n = 200
	g := polyInvSeries(f, n)
	prod := truncate(polyMul(f, g), n)
	if prod[0] != 1 {
		t.Fatalf("f·f⁻¹ constant term = %d, want 1", prod[0])
	}
	for i := 1; i < len(prod); i++ {
		if prod[i] != 0 {
			t.Fatalf("f·f⁻¹ coeff %d = %d, want 0", i, prod[i])
		}
	}
}

func TestEvalMultiLargeDegree(t *testing.T) {
	// Exercise the fast-division path (degree above the cutoff).
	rng := rand.New(rand.NewSource(23))
	p := NewPoly(400, rng)
	points := make([]uint64, 400)
	for i := range points {
		points[i] = rng.Uint64()
	}
	multi := p.EvalMulti(points)
	for _, i := range []int{0, 17, 199, 399} {
		if want := p.Eval(points[i]); multi[i] != want {
			t.Fatalf("EvalMulti[%d] = %d, want %d", i, multi[i], want)
		}
	}
}

func BenchmarkPolyEvalHorner(b *testing.B) {
	p := NewPoly(64, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Eval(uint64(i))
	}
}

func BenchmarkPolyEvalMulti64(b *testing.B) {
	p := NewPoly(64, rand.New(rand.NewSource(1)))
	points := make([]uint64, 64)
	for i := range points {
		points[i] = uint64(i) * 2654435761
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.EvalMulti(points)
	}
}
