package hash

import (
	"math/bits"
	"math/rand"
)

// Poly is a k-wise independent hash family member: a uniformly random
// polynomial of degree k−1 over GF(2^61 − 1), evaluated by Horner's rule.
// For distinct inputs x_1, …, x_k the values h(x_1), …, h(x_k) are fully
// independent and uniform over [0, Prime). Degree-1 polynomials give the
// classic pairwise family, degree-3 the 4-wise family required by AMS, and
// degree Θ(log log n + log 1/δ) the d-wise family of the paper's fast F0
// algorithm (Lemma 5.2).
type Poly struct {
	coeffs []uint64 // coeffs[0] is the constant term
}

// NewPoly draws a uniformly random member of the k-wise independent
// polynomial family using rng. k must be >= 1.
func NewPoly(k int, rng *rand.Rand) Poly {
	if k < 1 {
		panic("hash: k-wise family needs k >= 1")
	}
	c := make([]uint64, k)
	for i := range c {
		c[i] = rng.Uint64() % Prime
	}
	// Force a non-zero leading coefficient so the polynomial has true
	// degree k−1 (required for the multipoint division-based evaluation,
	// and harmless for independence: the family conditioned on a non-zero
	// leading coefficient is still k-wise independent on k distinct points
	// up to an O(1/Prime) statistical distance).
	if k > 1 && c[k-1] == 0 {
		c[k-1] = 1 + rng.Uint64()%(Prime-1)
	}
	return Poly{coeffs: c}
}

// Degree returns the polynomial degree (independence k = Degree()+1).
func (p Poly) Degree() int { return len(p.coeffs) - 1 }

// Coeffs returns a copy of the coefficients (constant term first). It
// exists so the seed-leakage adversary of the experiments can be handed
// the hash function's full description — the "randomness reuse" threat
// model that Section 10's PRF construction defends against.
func (p Poly) Coeffs() []uint64 { return append([]uint64(nil), p.coeffs...) }

// PolyFromCoeffs reconstructs a Poly from stored coefficients (constant
// term first), the inverse of Coeffs; used by sketch deserialization.
// Coefficients are canonicalized into the field.
func PolyFromCoeffs(coeffs []uint64) Poly {
	c := make([]uint64, len(coeffs))
	for i, v := range coeffs {
		c[i] = Canon(v)
	}
	if len(c) == 0 {
		c = []uint64{0}
	}
	return Poly{coeffs: c}
}

// Eval returns h(x) ∈ [0, Prime) by Horner's rule in O(k) field
// operations. The 4-wise case (AMS, CountSketch — every per-update hot
// path in the repository) is unrolled.
func (p Poly) Eval(x uint64) uint64 {
	x = Canon(x)
	c := p.coeffs
	if len(c) == 4 {
		acc := Add(Mul(c[3], x), c[2])
		acc = Add(Mul(acc, x), c[1])
		return Add(Mul(acc, x), c[0])
	}
	acc := c[len(c)-1]
	for i := len(c) - 2; i >= 0; i-- {
		acc = Add(Mul(acc, x), c[i])
	}
	return acc
}

// Uniform01 maps h(x) to a float in [0, 1), preserving order. It is the
// form consumed by KMV-style minimum-value sketches.
func (p Poly) Uniform01(x uint64) float64 {
	return float64(p.Eval(x)) / float64(Prime)
}

// Sign returns ±1 derived from the low bit of h(x); with a 4-wise family
// this is the 4-wise independent Rademacher variable used by AMS and
// CountSketch.
func (p Poly) Sign(x uint64) int64 {
	if p.Eval(x)&1 == 1 {
		return 1
	}
	return -1
}

// Bucket returns h(x) mod w, an (almost) uniform bucket index in [0, w).
// The bias from the non-divisibility of Prime by w is ≤ w/Prime.
func (p Poly) Bucket(x uint64, w int) int {
	return int(p.Eval(x) % uint64(w))
}

// SpaceBytes returns the seed storage of the hash function in bytes.
func (p Poly) SpaceBytes() int { return 8 * len(p.coeffs) }

// SignBucket returns both a sign and a bucket from a single evaluation,
// using disjoint bits of the hash value. The bucket uses the high bits and
// the sign the lowest bit, so with a (k+1)-wise family both are k-wise
// independent and mutually independent up to the 1/Prime discretization.
// The bucket is the range reduction ⌊v·w/2^64⌋ of the (shifted) hash
// value v — a single high multiply instead of a hardware divide, with the
// same ≤ w/Prime-order bias as the modulo it replaces. SignBucket is the
// innermost operation of every counter-sketch update loop, so its cost is
// the floor on ingest throughput.
func (p Poly) SignBucket(x uint64, w int) (sign int64, bucket int) {
	h := p.Eval(x)
	sign = int64(h&1)*2 - 1
	// h>>1 has 60 uniform-ish bits; align them to the top of the 64-bit
	// range so the high-multiply reduction sees the full word.
	hi, _ := bits.Mul64((h>>1)<<4, uint64(w))
	return sign, int(hi)
}
