package hash

import (
	"math"
	"math/rand"
	"testing"
)

func TestTabulationDeterministic(t *testing.T) {
	a := NewTabulation(rand.New(rand.NewSource(1)))
	b := NewTabulation(rand.New(rand.NewSource(1)))
	for x := uint64(0); x < 1000; x++ {
		if a.Eval(x) != b.Eval(x) {
			t.Fatalf("same-seed tabulation differs at %d", x)
		}
	}
}

func TestTabulationUniformBuckets(t *testing.T) {
	h := NewTabulation(rand.New(rand.NewSource(2)))
	const buckets, n = 32, 200000
	counts := make([]int, buckets)
	for x := uint64(0); x < n; x++ {
		counts[h.Bucket(x, buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.08*want {
			t.Errorf("bucket %d count %d deviates from %v", b, c, want)
		}
	}
}

func TestTabulationSequentialKeysWellMixed(t *testing.T) {
	// The property a degree-1 polynomial lacks (see the HLL fix): the top
	// bits of hashes of an arithmetic progression must not clump.
	h := NewTabulation(rand.New(rand.NewSource(3)))
	const regs = 1024
	hit := make([]bool, regs)
	touched := 0
	for x := uint64(0); x < 5000; x++ {
		r := h.Eval(x*2654435761+1) >> (64 - 10)
		if !hit[r] {
			hit[r] = true
			touched++
		}
	}
	// Expected touched ≈ regs·(1−e^{−5000/1024}) ≈ 1016.
	if touched < 950 {
		t.Errorf("only %d/%d registers touched by 5000 sequential keys", touched, regs)
	}
}

func TestTabulationSignBalance(t *testing.T) {
	h := NewTabulation(rand.New(rand.NewSource(4)))
	var sum int64
	const n = 100000
	for x := uint64(0); x < n; x++ {
		sum += h.Sign(x)
	}
	if math.Abs(float64(sum)) > 4*math.Sqrt(n) {
		t.Errorf("sign sum %d too unbalanced", sum)
	}
}

func TestTabulationUniform01Range(t *testing.T) {
	h := NewTabulation(rand.New(rand.NewSource(5)))
	for x := uint64(0); x < 1000; x++ {
		if u := h.Uniform01(x); u < 0 || u >= 1 {
			t.Fatalf("Uniform01(%d) = %v", x, u)
		}
	}
}

func BenchmarkTabulationEval(b *testing.B) {
	h := NewTabulation(rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Eval(uint64(i))
	}
}

func BenchmarkPolyEvalPairwise(b *testing.B) {
	p := NewPoly(2, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Eval(uint64(i))
	}
}
