// Package hash implements the hashing substrate used by every sketch in
// this repository: arithmetic over the Mersenne-prime field GF(2^61 − 1),
// k-wise independent polynomial hash families, and the fast multipoint
// polynomial evaluation (product-tree) algorithm the paper cites as
// Proposition 5.3 to batch d-wise-independent hash evaluations.
package hash

import "math/bits"

// Prime is the Mersenne prime 2^61 − 1 used as the field modulus. All
// field elements are canonical representatives in [0, Prime).
const Prime uint64 = 1<<61 - 1

// Bits is the bit width of the hash output range [0, Prime).
const Bits = 61

// reduce maps any x < 2^64 into [0, Prime) using the Mersenne identity
// 2^61 ≡ 1 (mod Prime).
func reduce(x uint64) uint64 {
	x = (x & Prime) + (x >> 61)
	if x >= Prime {
		x -= Prime
	}
	return x
}

// Add returns (a + b) mod Prime for canonical a, b.
func Add(a, b uint64) uint64 {
	s := a + b // < 2^62, no overflow
	if s >= Prime {
		s -= Prime
	}
	return s
}

// Sub returns (a − b) mod Prime for canonical a, b.
func Sub(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + Prime - b
}

// Mul returns (a · b) mod Prime for canonical a, b, using a 128-bit product
// and Mersenne reduction (2^64 ≡ 2^3 mod Prime).
func Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a·b = hi·2^64 + lo; since a, b < 2^61, hi < 2^58 and hi<<3 < 2^61.
	r := (lo & Prime) + (lo >> 61) + hi<<3
	return reduce(r)
}

// Neg returns (−a) mod Prime.
func Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return Prime - a
}

// Pow returns a^e mod Prime by square-and-multiply.
func Pow(a, e uint64) uint64 {
	r := uint64(1)
	base := a % Prime
	for e > 0 {
		if e&1 == 1 {
			r = Mul(r, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return r
}

// Inv returns the multiplicative inverse of a mod Prime (a must be
// non-zero), via Fermat's little theorem.
func Inv(a uint64) uint64 {
	return Pow(a, Prime-2)
}

// Canon maps an arbitrary uint64 into the field.
func Canon(x uint64) uint64 { return reduce(x) }
