package hash

// This file implements batched (multipoint) evaluation of a degree-d
// polynomial at d points via a subproduct tree, the substrate behind the
// paper's Proposition 5.3 (von zur Gathen & Gerhard, Modern Computer
// Algebra, ch. 10). The paper uses it to evaluate a d-wise independent hash
// function on a batch of d stream items at amortized cost well below d
// field operations per item, which is what gives Theorem 1.2 its
// O(polyloglog) worst-case update time.
//
// Over GF(2^61 − 1) there is no power-of-two root of unity of useful order,
// so the inner polynomial multiplication uses Karatsuba rather than an
// NTT; the batch evaluation costs O(M(d)·log d) field operations with
// M(d) = O(d^1.585), still far below the d^2 cost of d Horner evaluations,
// and the asymptotic claim of Prop. 5.3 is recovered with an FFT-capable
// modulus. This trade-off is documented in DESIGN.md.

// polyAdd returns a + b (coefficient-wise, mod Prime).
func polyAdd(a, b []uint64) []uint64 {
	if len(a) < len(b) {
		a, b = b, a
	}
	out := make([]uint64, len(a))
	copy(out, a)
	for i := range b {
		out[i] = Add(out[i], b[i])
	}
	return out
}

// polySub returns a − b.
func polySub(a, b []uint64) []uint64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]uint64, n)
	for i := range out {
		var av, bv uint64
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		out[i] = Sub(av, bv)
	}
	return trim(out)
}

func trim(a []uint64) []uint64 {
	n := len(a)
	for n > 1 && a[n-1] == 0 {
		n--
	}
	return a[:n]
}

const karatsubaCutoff = 32

// polyMul returns a · b using Karatsuba above the cutoff.
func polyMul(a, b []uint64) []uint64 {
	a, b = trim(a), trim(b)
	if len(a) == 1 && a[0] == 0 || len(b) == 1 && b[0] == 0 {
		return []uint64{0}
	}
	if len(a) < karatsubaCutoff || len(b) < karatsubaCutoff {
		return polyMulBasic(a, b)
	}
	half := len(a)
	if len(b) > half {
		half = len(b)
	}
	half = (half + 1) / 2
	a0, a1 := split(a, half)
	b0, b1 := split(b, half)
	z0 := polyMul(a0, b0)
	z2 := polyMul(a1, b1)
	z1 := polySub(polySub(polyMul(polyAdd(a0, a1), polyAdd(b0, b1)), z0), z2)
	out := make([]uint64, len(a)+len(b)-1)
	accumulate(out, z0, 0)
	accumulate(out, z1, half)
	accumulate(out, z2, 2*half)
	return trim(out)
}

func split(a []uint64, at int) (lo, hi []uint64) {
	if at >= len(a) {
		return a, []uint64{0}
	}
	return a[:at], a[at:]
}

func accumulate(dst, src []uint64, shift int) {
	for i, v := range src {
		if shift+i < len(dst) {
			dst[shift+i] = Add(dst[shift+i], v)
		}
	}
}

func polyMulBasic(a, b []uint64) []uint64 {
	out := make([]uint64, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			out[i+j] = Add(out[i+j], Mul(av, bv))
		}
	}
	return out
}

// polyModBasic returns a mod b by schoolbook long division — the base
// case for small operands and the reference implementation for tests.
func polyModBasic(a, b []uint64) []uint64 {
	a, b = trim(a), trim(b)
	if len(b) == 1 {
		if b[0] == 0 {
			panic("hash: polyMod by zero polynomial")
		}
		return []uint64{0}
	}
	rem := make([]uint64, len(a))
	copy(rem, a)
	invLead := Inv(b[len(b)-1])
	for len(rem) >= len(b) {
		rem = trim(rem)
		if len(rem) < len(b) {
			break
		}
		q := Mul(rem[len(rem)-1], invLead)
		off := len(rem) - len(b)
		for i, bv := range b {
			rem[off+i] = Sub(rem[off+i], Mul(q, bv))
		}
		rem = rem[:len(rem)-1]
	}
	return trim(rem)
}

// reverse returns the coefficient-reversed polynomial padded/truncated to
// length n (the x^{n−1}·f(1/x) transform used by fast division).
func reverse(a []uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := 0; i < n && i < len(a); i++ {
		out[i] = a[len(a)-1-i]
	}
	return out
}

// truncate returns a mod x^n.
func truncate(a []uint64, n int) []uint64 {
	if len(a) <= n {
		return a
	}
	return trim(append([]uint64(nil), a[:n]...))
}

// polyInvSeries returns the power-series inverse of f modulo x^n via
// Newton iteration (g ← g·(2 − f·g) mod x^{2k}); f[0] must be non-zero.
// Cost O(M(n)).
func polyInvSeries(f []uint64, n int) []uint64 {
	if len(f) == 0 || f[0] == 0 {
		panic("hash: polyInvSeries needs a unit constant term")
	}
	g := []uint64{Inv(f[0])}
	for k := 1; k < n; k *= 2 {
		m := 2 * k
		if m > n {
			m = n
		}
		fg := truncate(polyMul(truncate(f, m), g), m)
		// 2 − f·g
		two := make([]uint64, len(fg))
		copy(two, fg)
		for i := range two {
			two[i] = Neg(two[i])
		}
		two[0] = Add(two[0], 2)
		g = truncate(polyMul(g, two), m)
	}
	return truncate(g, n)
}

const fastDivCutoff = 64

// polyMod returns a mod b. Above the cutoff it uses fast division
// (reversal + Newton power-series inversion, von zur Gathen ch. 9), giving
// O(M(d)) per division and hence O(M(d)·log d) for the whole subproduct
// descent — the Proposition 5.3 cost profile.
func polyMod(a, b []uint64) []uint64 {
	a, b = trim(a), trim(b)
	if len(b) <= fastDivCutoff || len(a)-len(b) <= fastDivCutoff {
		return polyModBasic(a, b)
	}
	if len(a) < len(b) {
		return a
	}
	qLen := len(a) - len(b) + 1
	revA := reverse(a, len(a))
	revB := reverse(b, len(b))
	invRevB := polyInvSeries(revB, qLen)
	qRev := truncate(polyMul(truncate(revA, qLen), invRevB), qLen)
	q := reverse(qRev, qLen)
	qb := polyMul(q, b)
	r := polySub(a, qb)
	return truncate(r, len(b)-1)
}

// subproductTree holds the binary tree of Π(x − x_i) polynomials.
type subproductTree struct {
	points []uint64
	nodes  [][][]uint64 // nodes[level][i] is the product of a contiguous block
}

func buildTree(points []uint64) *subproductTree {
	n := len(points)
	level := make([][]uint64, n)
	for i, x := range points {
		level[i] = []uint64{Neg(Canon(x)), 1} // (x − x_i)
	}
	t := &subproductTree{points: points}
	t.nodes = append(t.nodes, level)
	for len(level) > 1 {
		next := make([][]uint64, (len(level)+1)/2)
		for i := 0; i < len(level)/2; i++ {
			next[i] = polyMul(level[2*i], level[2*i+1])
		}
		if len(level)%2 == 1 {
			next[len(next)-1] = level[len(level)-1]
		}
		level = next
		t.nodes = append(t.nodes, level)
	}
	return t
}

// evalDown recursively reduces p modulo the subtree rooted at
// (level, idx) and writes leaf values into out.
func (t *subproductTree) evalDown(p []uint64, level, idx int, out []uint64) {
	p = polyMod(p, t.nodes[level][idx])
	if level == 0 {
		out[idx] = p[0]
		return
	}
	left := 2 * idx
	right := left + 1
	t.evalDown(p, level-1, left, out)
	if right < len(t.nodes[level-1]) && (right>>1) == idx {
		t.evalDown(p, level-1, right, out)
	}
}

// EvalMulti evaluates the polynomial at every point using the subproduct
// tree. It returns the same values as calling Eval point-by-point.
func (p Poly) EvalMulti(points []uint64) []uint64 {
	if len(points) == 0 {
		return nil
	}
	// For tiny batches or low degrees Horner is faster.
	if len(points) < 16 || p.Degree() < 16 {
		out := make([]uint64, len(points))
		for i, x := range points {
			out[i] = p.Eval(x)
		}
		return out
	}
	canon := make([]uint64, len(points))
	for i, x := range points {
		canon[i] = Canon(x)
	}
	t := buildTree(canon)
	out := make([]uint64, len(points))
	root := len(t.nodes) - 1
	t.evalDown(p.coeffs, root, 0, out)
	return out
}
