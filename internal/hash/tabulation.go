package hash

import "math/rand"

// Tabulation is a simple tabulation hash over 64-bit keys: the key is
// split into 8 bytes, each indexes a table of random 64-bit words, and the
// results are XORed. Simple tabulation is 3-independent, and — unlike
// low-degree polynomials — behaves like a fully random function for many
// algorithms beyond what its independence suggests (Pătraşcu–Thorup),
// with no field arithmetic on the hot path. It trades seed space (16 KiB
// of tables) for per-evaluation speed, the opposite corner of the design
// space from Poly; the hash benchmarks quantify the gap.
type Tabulation struct {
	tables [8][256]uint64
}

// NewTabulation draws a random simple tabulation function.
func NewTabulation(rng *rand.Rand) *Tabulation {
	t := &Tabulation{}
	for i := range t.tables {
		for j := range t.tables[i] {
			t.tables[i][j] = rng.Uint64()
		}
	}
	return t
}

// Eval returns the 64-bit hash of x.
func (t *Tabulation) Eval(x uint64) uint64 {
	return t.tables[0][byte(x)] ^
		t.tables[1][byte(x>>8)] ^
		t.tables[2][byte(x>>16)] ^
		t.tables[3][byte(x>>24)] ^
		t.tables[4][byte(x>>32)] ^
		t.tables[5][byte(x>>40)] ^
		t.tables[6][byte(x>>48)] ^
		t.tables[7][byte(x>>56)]
}

// Uniform01 maps the hash to [0, 1).
func (t *Tabulation) Uniform01(x uint64) float64 {
	return float64(t.Eval(x)>>11) / float64(1<<53)
}

// Bucket returns Eval(x) mod w.
func (t *Tabulation) Bucket(x uint64, w int) int {
	return int(t.Eval(x) % uint64(w))
}

// Sign returns ±1 from the low bit.
func (t *Tabulation) Sign(x uint64) int64 {
	return int64(t.Eval(x)&1)*2 - 1
}

// SpaceBytes returns the table storage.
func (t *Tabulation) SpaceBytes() int { return 8 * 8 * 256 }
