package stream

import (
	"math"
	"math/rand"
)

// UniformGen emits m insertions of items drawn uniformly from [n].
type UniformGen struct {
	n   uint64
	m   int
	t   int
	rng *rand.Rand
}

// NewUniform returns a generator of m uniform insertions over a universe of
// size n.
func NewUniform(n uint64, m int, seed int64) *UniformGen {
	return &UniformGen{n: n, m: m, rng: rand.New(rand.NewSource(seed))}
}

// Next implements Generator.
func (g *UniformGen) Next() (Update, bool) {
	if g.t >= g.m {
		return Update{}, false
	}
	g.t++
	return Update{Item: g.rng.Uint64() % g.n, Delta: 1}, true
}

// ZipfGen emits m insertions with item frequencies following a Zipf law
// with parameter s > 1 over [n]. Zipfian streams are the canonical skewed
// workload for heavy hitters and entropy experiments.
type ZipfGen struct {
	m   int
	t   int
	z   *rand.Zipf
	rng *rand.Rand
}

// NewZipf returns a Zipf(s) generator over universe [n] emitting m updates.
// s must be > 1.
func NewZipf(n uint64, m int, s float64, seed int64) *ZipfGen {
	rng := rand.New(rand.NewSource(seed))
	return &ZipfGen{m: m, z: rand.NewZipf(rng, s, 1, n-1), rng: rng}
}

// Next implements Generator.
func (g *ZipfGen) Next() (Update, bool) {
	if g.t >= g.m {
		return Update{}, false
	}
	g.t++
	return Update{Item: g.z.Uint64(), Delta: 1}, true
}

// DistinctGen emits m insertions of m distinct items (0, 1, 2, …). It
// drives F0 along its steepest possible trajectory, maximizing the flip
// number of monotone statistics.
type DistinctGen struct {
	m int
	t int
}

// NewDistinct returns a generator of m all-distinct insertions.
func NewDistinct(m int) *DistinctGen { return &DistinctGen{m: m} }

// Next implements Generator.
func (g *DistinctGen) Next() (Update, bool) {
	if g.t >= g.m {
		return Update{}, false
	}
	u := Update{Item: uint64(g.t), Delta: 1}
	g.t++
	return u, true
}

// HeavyGen emits a background of uniform light items mixed with a fixed set
// of heavy items, each receiving a heavyFrac share of the updates. It is
// the workload for the heavy hitters experiments.
type HeavyGen struct {
	n      uint64
	m      int
	t      int
	heavy  []uint64
	hProb  float64
	rng    *rand.Rand
	offset uint64
}

// NewHeavy returns a generator over universe [n] emitting m updates where a
// fraction heavyFrac of updates is split evenly among k heavy items (ids
// n, n+1, …, n+k−1, disjoint from the light universe).
func NewHeavy(n uint64, m, k int, heavyFrac float64, seed int64) *HeavyGen {
	h := &HeavyGen{n: n, m: m, hProb: heavyFrac, rng: rand.New(rand.NewSource(seed)), offset: n}
	for i := 0; i < k; i++ {
		h.heavy = append(h.heavy, n+uint64(i))
	}
	return h
}

// Heavy returns the ids of the heavy items.
func (g *HeavyGen) Heavy() []uint64 { return append([]uint64(nil), g.heavy...) }

// Next implements Generator.
func (g *HeavyGen) Next() (Update, bool) {
	if g.t >= g.m {
		return Update{}, false
	}
	g.t++
	if len(g.heavy) > 0 && g.rng.Float64() < g.hProb {
		return Update{Item: g.heavy[g.rng.Intn(len(g.heavy))], Delta: 1}, true
	}
	return Update{Item: g.rng.Uint64() % g.n, Delta: 1}, true
}

// InsertDeleteGen emits the turnstile hard instance the paper cites when
// discussing flip number ([25]'s lower-bound stream): n insertions of
// distinct items followed by n deletions of the same items. Its Fp flip
// number is at most twice that of an insertion-only stream.
type InsertDeleteGen struct {
	n uint64
	t uint64
}

// NewInsertDelete returns the insert-then-delete turnstile generator over n
// items (stream length 2n).
func NewInsertDelete(n uint64) *InsertDeleteGen { return &InsertDeleteGen{n: n} }

// Next implements Generator.
func (g *InsertDeleteGen) Next() (Update, bool) {
	if g.t >= 2*g.n {
		return Update{}, false
	}
	u := Update{Item: g.t % g.n, Delta: 1}
	if g.t >= g.n {
		u.Delta = -1
	}
	g.t++
	return u, true
}

// BoundedDeletionGen emits a turnstile stream of unit updates that
// maintains the Fp α-bounded deletion invariant of Definition 8.1 exactly:
// at every prefix, ‖f‖_p^p ≥ (1/α)·‖h‖_p^p, where h is the absolute-value
// stream. Deletions are attempted with probability delProb and silently
// replaced by insertions whenever they would violate the invariant, so
// every emitted prefix satisfies it.
type BoundedDeletionGen struct {
	n       uint64
	m       int
	t       int
	p       float64
	alpha   float64
	delProb float64
	rng     *rand.Rand

	counts map[uint64]int64 // current f
	fp     float64          // Σ|f_i|^p
	hp     float64          // Σ h_i^p
	habs   map[uint64]int64 // current h
	live   []uint64         // items with f_i > 0, for choosing deletions
	liveIx map[uint64]int
	fresh  uint64 // next never-touched id (disjoint range above n)
}

// NewBoundedDeletion returns an Fp α-bounded-deletion generator over
// universe [n], emitting m unit updates, deleting with probability delProb
// when permitted. Requires p ≥ 1 and alpha ≥ 1.
func NewBoundedDeletion(n uint64, m int, p, alpha, delProb float64, seed int64) *BoundedDeletionGen {
	return &BoundedDeletionGen{
		n: n, m: m, p: p, alpha: alpha, delProb: delProb,
		rng:    rand.New(rand.NewSource(seed)),
		counts: make(map[uint64]int64),
		habs:   make(map[uint64]int64),
		liveIx: make(map[uint64]int),
	}
}

func (g *BoundedDeletionGen) pow(c int64) float64 {
	if c <= 0 {
		return 0
	}
	return math.Pow(float64(c), g.p)
}

func (g *BoundedDeletionGen) addLive(item uint64) {
	if _, ok := g.liveIx[item]; ok {
		return
	}
	g.liveIx[item] = len(g.live)
	g.live = append(g.live, item)
}

func (g *BoundedDeletionGen) removeLive(item uint64) {
	ix, ok := g.liveIx[item]
	if !ok {
		return
	}
	last := len(g.live) - 1
	g.live[ix] = g.live[last]
	g.liveIx[g.live[ix]] = ix
	g.live = g.live[:last]
	delete(g.liveIx, item)
}

func (g *BoundedDeletionGen) apply(item uint64, delta int64) {
	c := g.counts[item]
	g.fp += g.pow(c+delta) - g.pow(c)
	g.counts[item] = c + delta
	if c+delta == 0 {
		delete(g.counts, item)
		g.removeLive(item)
	} else {
		g.addLive(item)
	}
	h := g.habs[item]
	g.hp += g.pow(h+1) - g.pow(h)
	g.habs[item] = h + 1
}

// Next implements Generator.
func (g *BoundedDeletionGen) Next() (Update, bool) {
	if g.t >= g.m {
		return Update{}, false
	}
	g.t++
	if len(g.live) > 0 && g.rng.Float64() < g.delProb {
		item := g.live[g.rng.Intn(len(g.live))]
		c := g.counts[item]
		// The deletion is allowed only if the invariant survives it.
		newFp := g.fp + g.pow(c-1) - g.pow(c)
		newHp := g.hp + g.pow(g.habs[item]+1) - g.pow(g.habs[item])
		if newFp >= newHp/g.alpha {
			g.apply(item, -1)
			return Update{Item: item, Delta: -1}, true
		}
	}
	item := g.rng.Uint64() % g.n
	// For p > 1 an insertion into an item whose absolute-stream count h_i
	// exceeds its live count f_i grows Fp(h) faster than Fp(f), so even an
	// insertion can break the invariant. Fall back to a never-touched item
	// (where the two sides grow by exactly 1 each) whenever the margin is
	// too tight.
	newFp := g.fp + g.pow(g.counts[item]+1) - g.pow(g.counts[item])
	newHp := g.hp + g.pow(g.habs[item]+1) - g.pow(g.habs[item])
	if newFp < newHp/g.alpha {
		item = g.n + g.fresh
		g.fresh++
	}
	g.apply(item, 1)
	return Update{Item: item, Delta: 1}, true
}
