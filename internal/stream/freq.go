package stream

import (
	"math"
	"sort"
)

// Freq is an exact frequency vector maintained incrementally. It is the
// ground truth against which every sketch in this repository is validated:
// tests and the adversarial game runner feed the same updates to a sketch
// and to a Freq, then compare estimates against the exact statistics below.
//
// Freq deliberately uses Θ(F0) space; it is a reference implementation, not
// a streaming algorithm (the paper's lower bounds [9] show exact computation
// needs Ω(n) space, which is why the sketches exist).
type Freq struct {
	counts map[uint64]int64
	m      int64 // number of updates applied
}

// NewFreq returns an empty frequency vector.
func NewFreq() *Freq {
	return &Freq{counts: make(map[uint64]int64)}
}

// Apply processes one update.
func (f *Freq) Apply(u Update) {
	f.m++
	c := f.counts[u.Item] + u.Delta
	if c == 0 {
		delete(f.counts, u.Item)
	} else {
		f.counts[u.Item] = c
	}
}

// ApplyAll processes every update of s in order.
func (f *Freq) ApplyAll(s Stream) {
	for _, u := range s {
		f.Apply(u)
	}
}

// Updates returns the number of updates applied so far (the stream length m).
func (f *Freq) Updates() int64 { return f.m }

// Count returns f[item].
func (f *Freq) Count(item uint64) int64 { return f.counts[item] }

// Support returns the set of items with non-zero frequency, in no
// particular order.
func (f *Freq) Support() []uint64 {
	items := make([]uint64, 0, len(f.counts))
	for i := range f.counts {
		items = append(items, i)
	}
	return items
}

// F0 returns the number of distinct elements ‖f‖₀ = |{i : f_i ≠ 0}|.
func (f *Freq) F0() float64 { return float64(len(f.counts)) }

// F1 returns ‖f‖₁ = Σ|f_i|.
func (f *Freq) F1() float64 {
	var s float64
	for _, c := range f.counts {
		s += math.Abs(float64(c))
	}
	return s
}

// Fp returns the p-th frequency moment F_p = Σ|f_i|^p for p > 0.
// For p = 0 it returns F0 (with the convention 0^0 = 0).
func (f *Freq) Fp(p float64) float64 {
	if p == 0 {
		return f.F0()
	}
	var s float64
	for _, c := range f.counts {
		s += math.Pow(math.Abs(float64(c)), p)
	}
	return s
}

// Lp returns the p-norm ‖f‖_p = F_p^{1/p} for p > 0.
func (f *Freq) Lp(p float64) float64 { return math.Pow(f.Fp(p), 1/p) }

// L2 returns the Euclidean norm ‖f‖₂.
func (f *Freq) L2() float64 { return f.Lp(2) }

// Entropy returns the empirical Shannon entropy in bits,
// H(f) = −Σ |f_i|/‖f‖₁ · log₂(|f_i|/‖f‖₁), with H of the zero vector
// defined as 0.
func (f *Freq) Entropy() float64 {
	f1 := f.F1()
	if f1 == 0 {
		return 0
	}
	var h float64
	for _, c := range f.counts {
		p := math.Abs(float64(c)) / f1
		h -= p * math.Log2(p)
	}
	return h
}

// RenyiEntropy returns the α-Rényi entropy in bits,
// H_α(f) = log₂(‖f‖_α^α / ‖f‖₁^α) / (1−α), defined for α > 0, α ≠ 1.
func (f *Freq) RenyiEntropy(alpha float64) float64 {
	f1 := f.F1()
	if f1 == 0 {
		return 0
	}
	fa := f.Fp(alpha)
	return (math.Log2(fa) - alpha*math.Log2(f1)) / (1 - alpha)
}

// HeavyHitters returns every item i with |f_i| ≥ threshold, sorted by item
// id for determinism.
func (f *Freq) HeavyHitters(threshold float64) []uint64 {
	var hh []uint64
	for i, c := range f.counts {
		if math.Abs(float64(c)) >= threshold {
			hh = append(hh, i)
		}
	}
	sort.Slice(hh, func(a, b int) bool { return hh[a] < hh[b] })
	return hh
}

// L2HeavyHitters returns every item with |f_i| ≥ eps·‖f‖₂ (the L2 guarantee
// of Definition 6.1 of the paper).
func (f *Freq) L2HeavyHitters(eps float64) []uint64 {
	return f.HeavyHitters(eps * f.L2())
}

// MaxAbs returns ‖f‖∞ = max_i |f_i|.
func (f *Freq) MaxAbs() int64 {
	var m int64
	for _, c := range f.counts {
		if c < 0 {
			c = -c
		}
		if c > m {
			m = c
		}
	}
	return m
}

// Trajectory applies s update-by-update and returns the value of g after
// every prefix: out[t] = g(f^(t)) for t = 1..len(s). It is the reference
// sequence used by flip-number measurements and strong-tracking tests.
func Trajectory(s Stream, g func(*Freq) float64) []float64 {
	f := NewFreq()
	out := make([]float64, len(s))
	for t, u := range s {
		f.Apply(u)
		out[t] = g(f)
	}
	return out
}
