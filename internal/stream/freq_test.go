package stream

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFreqBasicCounts(t *testing.T) {
	f := NewFreq()
	f.Apply(Update{Item: 1, Delta: 3})
	f.Apply(Update{Item: 2, Delta: 1})
	f.Apply(Update{Item: 1, Delta: -1})
	if got := f.Count(1); got != 2 {
		t.Errorf("Count(1) = %d, want 2", got)
	}
	if got := f.Count(2); got != 1 {
		t.Errorf("Count(2) = %d, want 1", got)
	}
	if got := f.Count(3); got != 0 {
		t.Errorf("Count(3) = %d, want 0", got)
	}
	if got := f.Updates(); got != 3 {
		t.Errorf("Updates() = %d, want 3", got)
	}
}

func TestFreqF0RemovesZeroedItems(t *testing.T) {
	f := NewFreq()
	f.Apply(Update{Item: 7, Delta: 5})
	f.Apply(Update{Item: 8, Delta: 2})
	if got := f.F0(); got != 2 {
		t.Fatalf("F0 = %v, want 2", got)
	}
	f.Apply(Update{Item: 7, Delta: -5})
	if got := f.F0(); got != 1 {
		t.Fatalf("F0 after cancellation = %v, want 1", got)
	}
	if got := len(f.Support()); got != 1 {
		t.Fatalf("Support size = %d, want 1", got)
	}
}

func TestFreqMoments(t *testing.T) {
	f := NewFreq()
	// f = (3, -4): F1 = 7, F2 = 25, L2 = 5, F0 = 2.
	f.Apply(Update{Item: 0, Delta: 3})
	f.Apply(Update{Item: 1, Delta: -4})
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"F0", f.F0(), 2},
		{"F1", f.F1(), 7},
		{"F2", f.Fp(2), 25},
		{"L2", f.L2(), 5},
		{"F3", f.Fp(3), 27 + 64},
		{"MaxAbs", float64(f.MaxAbs()), 4},
	}
	for _, c := range cases {
		if math.Abs(c.got-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestFreqEntropyUniform(t *testing.T) {
	f := NewFreq()
	for i := uint64(0); i < 8; i++ {
		f.Apply(Update{Item: i, Delta: 5})
	}
	if got, want := f.Entropy(), 3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Entropy of uniform-8 = %v, want %v", got, want)
	}
}

func TestFreqEntropyDegenerate(t *testing.T) {
	f := NewFreq()
	if got := f.Entropy(); got != 0 {
		t.Errorf("Entropy of empty stream = %v, want 0", got)
	}
	f.Apply(Update{Item: 42, Delta: 100})
	if got := f.Entropy(); got != 0 {
		t.Errorf("Entropy of single-item stream = %v, want 0", got)
	}
}

func TestFreqRenyiApproachesShannon(t *testing.T) {
	f := NewFreq()
	f.Apply(Update{Item: 0, Delta: 1})
	f.Apply(Update{Item: 1, Delta: 2})
	f.Apply(Update{Item: 2, Delta: 4})
	h := f.Entropy()
	// H_α → H as α → 1 (Prop. 7.1 direction).
	prevGap := math.Inf(1)
	for _, a := range []float64{1.5, 1.2, 1.05, 1.01} {
		gap := math.Abs(f.RenyiEntropy(a) - h)
		if gap > prevGap+1e-9 {
			t.Errorf("Rényi gap increased at α=%v: %v > %v", a, gap, prevGap)
		}
		prevGap = gap
	}
	if prevGap > 0.01 {
		t.Errorf("H_1.01 gap = %v, want < 0.01", prevGap)
	}
}

func TestFreqHeavyHitters(t *testing.T) {
	f := NewFreq()
	f.Apply(Update{Item: 1, Delta: 100})
	f.Apply(Update{Item: 2, Delta: 10})
	f.Apply(Update{Item: 3, Delta: 30})
	hh := f.HeavyHitters(30)
	if len(hh) != 2 || hh[0] != 1 || hh[1] != 3 {
		t.Errorf("HeavyHitters(30) = %v, want [1 3]", hh)
	}
	// L2 = sqrt(11000) ≈ 104.9; threshold 0.5·L2 ≈ 52.4 keeps only item 1.
	if got := f.L2HeavyHitters(0.5); len(got) != 1 || got[0] != 1 {
		t.Errorf("L2HeavyHitters(0.5) = %v, want [1]", got)
	}
}

func TestTrajectoryMatchesFinalState(t *testing.T) {
	s := Collect(NewUniform(64, 500, 1), 0)
	traj := Trajectory(s, (*Freq).F0)
	f := NewFreq()
	f.ApplyAll(s)
	if traj[len(traj)-1] != f.F0() {
		t.Errorf("final trajectory value %v != exact F0 %v", traj[len(traj)-1], f.F0())
	}
	for i := 1; i < len(traj); i++ {
		if traj[i] < traj[i-1] {
			t.Fatalf("F0 trajectory decreased at %d on insertion-only stream", i)
		}
	}
}

// Property: F1 of an insertion-only stream equals the number of unit
// insertions, and F0 <= F1.
func TestFreqPropertyF1CountsInsertions(t *testing.T) {
	prop := func(items []uint16) bool {
		f := NewFreq()
		for _, it := range items {
			f.Apply(Update{Item: uint64(it), Delta: 1})
		}
		return f.F1() == float64(len(items)) && f.F0() <= f.F1()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: applying a stream and then its exact negation returns every
// statistic to zero.
func TestFreqPropertyCancellation(t *testing.T) {
	prop := func(items []uint8, deltas []int8) bool {
		f := NewFreq()
		n := len(items)
		if len(deltas) < n {
			n = len(deltas)
		}
		for i := 0; i < n; i++ {
			f.Apply(Update{Item: uint64(items[i]), Delta: int64(deltas[i])})
		}
		for i := 0; i < n; i++ {
			f.Apply(Update{Item: uint64(items[i]), Delta: -int64(deltas[i])})
		}
		return f.F0() == 0 && f.F1() == 0 && f.Entropy() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
