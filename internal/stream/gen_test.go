package stream

import (
	"math"
	"testing"
)

func TestUniformGenLengthAndRange(t *testing.T) {
	const n, m = 128, 1000
	s := Collect(NewUniform(n, m, 42), 0)
	if len(s) != m {
		t.Fatalf("len = %d, want %d", len(s), m)
	}
	for _, u := range s {
		if u.Item >= n {
			t.Fatalf("item %d out of range [0,%d)", u.Item, n)
		}
		if u.Delta != 1 {
			t.Fatalf("delta = %d, want 1", u.Delta)
		}
	}
	if !s.InsertionOnly() {
		t.Error("uniform stream must be insertion-only")
	}
}

func TestUniformGenDeterministic(t *testing.T) {
	a := Collect(NewUniform(64, 100, 7), 0)
	b := Collect(NewUniform(64, 100, 7), 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := Collect(NewUniform(64, 100, 8), 0)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestZipfGenSkew(t *testing.T) {
	s := Collect(NewZipf(1<<16, 20000, 1.5, 3), 0)
	f := NewFreq()
	f.ApplyAll(s)
	// A Zipf(1.5) stream is heavily skewed: the top item should hold a
	// large constant fraction of the mass and F0 should be far below m.
	if top := float64(f.MaxAbs()); top < 0.2*f.F1() {
		t.Errorf("top item mass %v < 20%% of F1 %v; stream not skewed", top, f.F1())
	}
	if f.F0() > 0.5*float64(len(s)) {
		t.Errorf("F0 = %v too close to m = %d for a skewed stream", f.F0(), len(s))
	}
}

func TestDistinctGen(t *testing.T) {
	s := Collect(NewDistinct(500), 0)
	f := NewFreq()
	f.ApplyAll(s)
	if f.F0() != 500 {
		t.Errorf("F0 = %v, want 500", f.F0())
	}
	if math.Abs(f.Entropy()-math.Log2(500)) > 1e-9 {
		t.Errorf("Entropy = %v, want log2(500) = %v", f.Entropy(), math.Log2(500))
	}
}

func TestHeavyGenConcentratesMass(t *testing.T) {
	g := NewHeavy(1<<20, 50000, 4, 0.4, 11)
	s := Collect(g, 0)
	f := NewFreq()
	f.ApplyAll(s)
	var heavyMass float64
	for _, h := range g.Heavy() {
		heavyMass += float64(f.Count(h))
	}
	if frac := heavyMass / f.F1(); math.Abs(frac-0.4) > 0.05 {
		t.Errorf("heavy mass fraction = %v, want ≈ 0.4", frac)
	}
	// Every heavy item should be an L2 heavy hitter at a modest epsilon.
	hh := f.L2HeavyHitters(0.05)
	set := map[uint64]bool{}
	for _, i := range hh {
		set[i] = true
	}
	for _, h := range g.Heavy() {
		if !set[h] {
			t.Errorf("heavy item %d missing from exact L2 heavy hitters", h)
		}
	}
}

func TestInsertDeleteGenReturnsToZero(t *testing.T) {
	s := Collect(NewInsertDelete(300), 0)
	if len(s) != 600 {
		t.Fatalf("len = %d, want 600", len(s))
	}
	f := NewFreq()
	half := NewFreq()
	for i, u := range s {
		f.Apply(u)
		if i == 299 {
			half.ApplyAll(s[:300])
		}
	}
	if half.F0() != 300 {
		t.Errorf("midpoint F0 = %v, want 300", half.F0())
	}
	if f.F0() != 0 || f.F1() != 0 {
		t.Errorf("final F0 = %v, F1 = %v, want 0, 0", f.F0(), f.F1())
	}
}

func TestBoundedDeletionInvariantHolds(t *testing.T) {
	for _, p := range []float64{1, 1.5, 2} {
		for _, alpha := range []float64{1.5, 4, 16} {
			g := NewBoundedDeletion(256, 4000, p, alpha, 0.45, 5)
			f := NewFreq()
			h := NewFreq()
			step := 0
			for {
				u, ok := g.Next()
				if !ok {
					break
				}
				step++
				f.Apply(u)
				hu := u
				if hu.Delta < 0 {
					hu.Delta = -hu.Delta
				}
				h.Apply(hu)
				if fp, hp := f.Fp(p), h.Fp(p); fp < hp/alpha-1e-9 {
					t.Fatalf("p=%v α=%v: invariant violated at step %d: Fp(f)=%v < Fp(h)/α=%v",
						p, alpha, step, fp, hp/alpha)
				}
			}
			if step != 4000 {
				t.Fatalf("generator emitted %d updates, want 4000", step)
			}
		}
	}
}

func TestBoundedDeletionActuallyDeletes(t *testing.T) {
	g := NewBoundedDeletion(256, 4000, 1, 8, 0.45, 5)
	s := Collect(g, 0)
	dels := 0
	for _, u := range s {
		if u.Delta < 0 {
			dels++
		}
	}
	if dels == 0 {
		t.Error("bounded-deletion generator produced no deletions")
	}
	if dels > len(s)/2 {
		t.Errorf("deletions = %d out of %d; more deletions than insertions is impossible", dels, len(s))
	}
}

func TestFromSliceRoundTrip(t *testing.T) {
	orig := Stream{{1, 2}, {3, -1}, {1, 5}}
	got := Collect(FromSlice(orig), 0)
	if len(got) != len(orig) {
		t.Fatalf("len = %d, want %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i] != orig[i] {
			t.Errorf("update %d = %v, want %v", i, got[i], orig[i])
		}
	}
}

func TestCollectMax(t *testing.T) {
	s := Collect(NewDistinct(1000), 10)
	if len(s) != 10 {
		t.Errorf("Collect with max=10 returned %d updates", len(s))
	}
}
