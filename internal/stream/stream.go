// Package stream defines the data-stream model of the paper: sequences of
// updates (a_t, Δ_t) ∈ [n] × Z to a frequency vector f ∈ R^n, together with
// exact reference statistics (used as ground truth in tests and
// experiments) and workload generators for every stream class the paper
// considers: insertion-only, turnstile, and α-bounded-deletion streams.
package stream

// Update is a single stream update (a_t, Δ_t): Item receives an increment
// of Delta. In the insertion-only model Delta > 0; in the turnstile model
// Delta may be negative.
type Update struct {
	Item  uint64
	Delta int64
}

// Stream is a finite sequence of updates.
type Stream []Update

// Generator produces a stream one update at a time. Generators are used by
// tests, benchmarks and the experiment harness; adaptive adversaries (which
// must observe algorithm outputs between updates) live in internal/adversary
// instead and implement game.Adversary.
type Generator interface {
	// Next returns the next update. ok is false when the stream is exhausted.
	Next() (u Update, ok bool)
}

// Collect drains g into a Stream, stopping after at most max updates
// (max <= 0 means no limit).
func Collect(g Generator, max int) Stream {
	var s Stream
	for {
		u, ok := g.Next()
		if !ok {
			return s
		}
		s = append(s, u)
		if max > 0 && len(s) >= max {
			return s
		}
	}
}

// InsertionOnly reports whether every update in s has positive delta.
func (s Stream) InsertionOnly() bool {
	for _, u := range s {
		if u.Delta <= 0 {
			return false
		}
	}
	return true
}

// SliceGenerator adapts a Stream into a Generator.
type SliceGenerator struct {
	s Stream
	i int
}

// FromSlice returns a Generator that replays s.
func FromSlice(s Stream) *SliceGenerator { return &SliceGenerator{s: s} }

// Next implements Generator.
func (g *SliceGenerator) Next() (Update, bool) {
	if g.i >= len(g.s) {
		return Update{}, false
	}
	u := g.s[g.i]
	g.i++
	return u, true
}
