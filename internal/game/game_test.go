package game

import (
	"testing"

	"repro/internal/f0"
	"repro/internal/stream"
)

func TestRunObliviousExactNeverBreaks(t *testing.T) {
	res := Run(
		f0.NewExact(),
		FromGenerator(stream.NewUniform(512, 3000, 1)),
		(*stream.Freq).F0,
		RelCheck(0.01),
		Config{},
	)
	if res.Broken {
		t.Fatalf("exact algorithm broke at step %d (est %v, truth %v)",
			res.BrokenAt, res.BrokenEst, res.BrokenTru)
	}
	if res.Steps != 3000 {
		t.Errorf("Steps = %d, want 3000", res.Steps)
	}
	if res.MaxRelErr != 0 {
		t.Errorf("MaxRelErr = %v, want 0 for exact algorithm", res.MaxRelErr)
	}
}

// brokenEstimator always answers 1.
type brokenEstimator struct{}

func (brokenEstimator) Update(uint64, int64) {}
func (brokenEstimator) Estimate() float64    { return 1 }
func (brokenEstimator) SpaceBytes() int      { return 0 }

func TestRunDetectsBreakage(t *testing.T) {
	res := Run(
		brokenEstimator{},
		FromGenerator(stream.NewDistinct(100)),
		(*stream.Freq).F0,
		RelCheck(0.5),
		Config{StopOnBreak: true},
	)
	if !res.Broken {
		t.Fatal("constant estimator should break on a distinct ramp")
	}
	// Truth 1 then 2: estimate 1 vs truth 2 is a factor 2 off, breaking at
	// relative 0.5 on step 3 (truth 3).
	if res.BrokenAt == 0 || res.BrokenAt > 4 {
		t.Errorf("BrokenAt = %d, want small", res.BrokenAt)
	}
	if res.Steps != res.BrokenAt {
		t.Errorf("StopOnBreak should end the game at the break: steps %d vs %d", res.Steps, res.BrokenAt)
	}
}

func TestRunWarmupSuppressesEarlyChecks(t *testing.T) {
	res := Run(
		brokenEstimator{},
		FromGenerator(stream.NewDistinct(10)),
		(*stream.Freq).F0,
		RelCheck(0.5),
		Config{Warmup: 10},
	)
	if res.Broken {
		t.Error("all steps were within warmup; no break should be recorded")
	}
}

func TestRunRecordsSeries(t *testing.T) {
	res := Run(
		f0.NewExact(),
		FromGenerator(stream.NewDistinct(50)),
		(*stream.Freq).F0,
		RelCheck(0.1),
		Config{Record: true},
	)
	if len(res.Estimates) != 50 || len(res.Truths) != 50 {
		t.Fatalf("series lengths %d/%d, want 50/50", len(res.Estimates), len(res.Truths))
	}
	if res.Truths[49] != 50 || res.Estimates[49] != 50 {
		t.Errorf("final recorded values %v/%v, want 50/50", res.Estimates[49], res.Truths[49])
	}
}

func TestRunMaxStepsCapsAdversary(t *testing.T) {
	infinite := AdversaryFunc(func(_ float64, step int) (stream.Update, bool) {
		return stream.Update{Item: uint64(step), Delta: 1}, true
	})
	res := Run(f0.NewExact(), infinite, (*stream.Freq).F0, RelCheck(0.1), Config{MaxSteps: 123})
	if res.Steps != 123 {
		t.Errorf("Steps = %d, want 123", res.Steps)
	}
}

func TestAdversarySeesResponses(t *testing.T) {
	// An adaptive adversary that echoes the last response into item ids;
	// verifies the feedback loop is wired.
	var seen []float64
	adv := AdversaryFunc(func(last float64, step int) (stream.Update, bool) {
		if step > 0 {
			seen = append(seen, last)
		}
		if step >= 5 {
			return stream.Update{}, false
		}
		return stream.Update{Item: uint64(step), Delta: 1}, true
	})
	Run(f0.NewExact(), adv, (*stream.Freq).F0, RelCheck(0.1), Config{})
	want := []float64{1, 2, 3, 4, 5}
	if len(seen) != len(want) {
		t.Fatalf("adversary observed %d responses, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("response %d = %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestChecks(t *testing.T) {
	rc := RelCheck(0.1)
	if !rc(110, 100) || rc(111, 100) || !rc(0, 0) || rc(1, 0) {
		t.Error("RelCheck misbehaves")
	}
	if !rc(-110, -100) || rc(-115, -100) {
		t.Error("RelCheck misbehaves on negative truths")
	}
	ac := AdditiveCheck(0.5)
	if !ac(1.4, 1.0) || ac(1.6, 1.0) {
		t.Error("AdditiveCheck misbehaves")
	}
}
