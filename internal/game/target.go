package game

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/sketch"
)

// Target is a system under adversarial test: anything that ingests stream
// updates and publishes estimates the adversary can observe. The paper's
// game is defined against a bare streaming algorithm; Target widens it to
// the production stack — the sharded ingest engine and a sketchd tenant
// reached over HTTP — so the same adversary.* strategies run full
// query→adapt→update campaigns against exactly what a deployment exposes.
// Ground truth stays on the runner's side of the interface: a Target never
// sees the exact frequency vector it is judged against.
type Target interface {
	// Update ingests f[item] += delta.
	Update(item uint64, delta int64) error

	// Estimate returns the target's current published estimate — the
	// response the adversary observes.
	Estimate() (float64, error)
}

// estimatorTarget adapts a bare sketch.Estimator: the in-process setting
// of the original game.
type estimatorTarget struct {
	est sketch.Estimator
}

// NewEstimatorTarget wraps an in-process estimator (static or robust) as a
// Target. Its operations never fail.
func NewEstimatorTarget(est sketch.Estimator) Target {
	return estimatorTarget{est: est}
}

func (t estimatorTarget) Update(item uint64, delta int64) error {
	t.est.Update(item, delta)
	return nil
}

func (t estimatorTarget) Estimate() (float64, error) {
	return t.est.Estimate(), nil
}

// engineTarget adapts a sharded ingest engine; the adversary's feedback
// is the flushed, combined cross-shard estimate — what engine.Estimate
// serves a caller between updates.
type engineTarget struct {
	eng *engine.Engine
}

// NewEngineTarget wraps an engine.Engine as a Target. The caller keeps
// ownership of the engine (and closes it); updates against a closed engine
// report an error instead of panicking.
func NewEngineTarget(eng *engine.Engine) Target {
	return engineTarget{eng: eng}
}

func (t engineTarget) Update(item uint64, delta int64) error {
	if !t.eng.TryUpdate(item, delta) {
		return fmt.Errorf("game: engine target is closed")
	}
	return nil
}

func (t engineTarget) Estimate() (float64, error) {
	return t.eng.Estimate(), nil
}

// The third Target implementation — a sketchd keyspace driven over HTTP —
// lives in internal/client (client.NewGameTarget): the game package is
// imported by the estimator packages' tests, so it must stay below the
// server stack in the dependency order.
