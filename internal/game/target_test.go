package game_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/f0"
	"repro/internal/game"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// exactFactory builds the exact F0 counter, whose estimates are
// deterministic — the reference point for target equivalence.
func exactFactory(int64) sketch.Estimator { return f0.NewExact() }

// TestTargetsAgreeOnExactF0 runs the same oblivious stream through all
// three Target implementations over an exact F0 estimator and requires
// identical per-round responses: the production wrappers (sharding,
// batching, HTTP) must be estimate-transparent.
func TestTargetsAgreeOnExactF0(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 4, Batch: 8, Factory: exactFactory, Seed: 1})
	defer eng.Close()

	// A sketchd keyspace needs a registry type; the registry has no exact
	// estimator, so the HTTP target is exercised separately below. Here:
	// estimator vs engine.
	targets := map[string]game.Target{
		"estimator": game.NewEstimatorTarget(f0.NewExact()),
		"engine":    game.NewEngineTarget(eng),
	}
	results := map[string]game.Result{}
	for name, tgt := range targets {
		res, err := game.RunTarget(tgt,
			game.FromGenerator(stream.NewUniform(256, 1500, 7)),
			(*stream.Freq).F0, game.RelCheck(1e-9), game.Config{Record: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Broken {
			t.Errorf("%s: exact estimator broke at %d (est %v, truth %v)",
				name, res.BrokenAt, res.BrokenEst, res.BrokenTru)
		}
		results[name] = res
	}
	est, eng2 := results["estimator"], results["engine"]
	if est.Steps != eng2.Steps {
		t.Fatalf("step counts differ: %d vs %d", est.Steps, eng2.Steps)
	}
	for i := range est.Estimates {
		if est.Estimates[i] != eng2.Estimates[i] {
			t.Fatalf("round %d: estimator answered %v, engine answered %v",
				i+1, est.Estimates[i], eng2.Estimates[i])
		}
	}
}

// TestClientTargetFeedbackLoop verifies the adaptive feedback loop is
// wired through HTTP: the responses the adversary observes must be
// exactly the estimates the server published each round (whatever their
// values — a robust keyspace rounds them), and a robust-f0 tenant must
// track an oblivious distinct ramp within ε.
func TestClientTargetFeedbackLoop(t *testing.T) {
	srv := server.New(server.Config{Shards: 2, Eps: 0.3, Delta: 0.05, N: 1 << 16, Seed: 3})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Drain()
	c := client.New(hs.URL, hs.Client())
	ctx := context.Background()
	if err := c.CreateKey(ctx, "loop", "robust-f0"); err != nil {
		t.Fatal(err)
	}
	tgt := client.NewGameTarget(ctx, c, "loop")

	var observed []float64
	adv := game.AdversaryFunc(func(last float64, step int) (stream.Update, bool) {
		if step > 0 {
			observed = append(observed, last)
		}
		if step >= 40 {
			return stream.Update{}, false
		}
		return stream.Update{Item: uint64(step), Delta: 1}, true
	})
	res, err := game.RunTarget(tgt, adv, (*stream.Freq).F0, game.RelCheck(0.5),
		game.Config{Record: true, Warmup: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 40 {
		t.Fatalf("Steps = %d, want 40", res.Steps)
	}
	if res.Broken {
		t.Errorf("robust-f0 broke on an oblivious distinct ramp at %d (est %v, truth %v)",
			res.BrokenAt, res.BrokenEst, res.BrokenTru)
	}
	if len(observed) != 40 {
		t.Fatalf("adversary observed %d responses, want 40", len(observed))
	}
	for i, got := range observed {
		if want := res.Estimates[i]; got != want {
			t.Errorf("round %d: adversary saw %v, server published %v", i+1, got, want)
		}
	}
}

// TestEngineTargetClosedEngineAborts requires a campaign against a closed
// engine to abort with an error, not a panic and not a silently wrong
// result.
func TestEngineTargetClosedEngineAborts(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 2, Factory: exactFactory, Seed: 1})
	eng.Close()
	_, err := game.RunTarget(game.NewEngineTarget(eng),
		game.FromGenerator(stream.NewUniform(16, 100, 1)),
		(*stream.Freq).F0, game.RelCheck(0.5), game.Config{})
	if err == nil {
		t.Fatal("campaign against a closed engine reported no error")
	}
}

// TestClientTargetServerErrorAborts points the HTTP target at a drained
// server: the first update must surface the 503 as a campaign error.
func TestClientTargetServerErrorAborts(t *testing.T) {
	srv := server.New(server.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	srv.Drain()
	tgt := client.NewGameTarget(context.Background(), client.New(hs.URL, hs.Client()), "gone")
	_, err := game.RunTarget(tgt,
		game.FromGenerator(stream.NewUniform(16, 10, 1)),
		(*stream.Freq).F0, game.RelCheck(0.5), game.Config{})
	if err == nil {
		t.Fatal("campaign against a draining server reported no error")
	}
}
