// Package game implements the two-player adversarial game of the paper's
// Section 1: at each round the Adversary emits a stream update (which may
// depend on every previous published output), the StreamingAlgorithm
// ingests it and publishes its response, and the Adversary observes the
// response. The runner tracks exact ground truth alongside and reports
// whether — and when — the algorithm was forced into an incorrect output.
//
// The algorithm's side of the game is the Target interface, with three
// implementations: an in-process sketch.Estimator (the paper's setting),
// a sharded engine.Engine, and a sketchd keyspace driven over HTTP via
// internal/client — so the same adversaries attack the full production
// stack, round-tripping each response through /v1/estimate before
// choosing the next update.
package game

import (
	"fmt"

	"repro/internal/sketch"
	"repro/internal/stream"
)

// Adversary chooses stream updates adaptively. Next receives the
// algorithm's response to the previous update (0 before the first round)
// and the 0-based round number; returning ok = false ends the stream.
type Adversary interface {
	Next(lastResponse float64, step int) (u stream.Update, ok bool)
}

// AdversaryFunc adapts a function to the Adversary interface.
type AdversaryFunc func(lastResponse float64, step int) (stream.Update, bool)

// Next implements Adversary.
func (f AdversaryFunc) Next(lastResponse float64, step int) (stream.Update, bool) {
	return f(lastResponse, step)
}

// FromGenerator adapts an oblivious (non-adaptive) stream generator into
// an Adversary that ignores the responses — the static setting embedded in
// the adversarial one.
func FromGenerator(g stream.Generator) Adversary {
	return AdversaryFunc(func(_ float64, _ int) (stream.Update, bool) {
		return g.Next()
	})
}

// Check decides whether a published estimate is acceptable against the
// exact ground-truth value.
type Check func(estimate, truth float64) bool

// RelCheck returns a Check accepting (1±eps)-approximations, treating a
// zero truth as requiring |estimate| ≤ eps.
func RelCheck(eps float64) Check {
	return func(est, truth float64) bool {
		if truth == 0 {
			return est >= -eps && est <= eps
		}
		lo, hi := (1-eps)*truth, (1+eps)*truth
		if lo > hi {
			lo, hi = hi, lo
		}
		return lo <= est && est <= hi
	}
}

// AdditiveCheck returns a Check accepting |estimate − truth| ≤ eps.
func AdditiveCheck(eps float64) Check {
	return func(est, truth float64) bool {
		d := est - truth
		return d >= -eps && d <= eps
	}
}

// Result summarizes a completed game.
type Result struct {
	Steps     int     // rounds played
	Broken    bool    // did the adversary force an unacceptable output?
	BrokenAt  int     // first failing round (1-based; 0 if never)
	BrokenEst float64 // the failing estimate
	BrokenTru float64 // the truth at the failure
	MaxRelErr float64 // max relative error observed (truth > 0 steps only)

	// Series are filled only when Config.Record is set.
	Estimates []float64
	Truths    []float64
}

// Config controls a game run.
type Config struct {
	MaxSteps    int  // hard cap on rounds (0 means run until the adversary stops)
	Record      bool // capture per-step estimate/truth series
	StopOnBreak bool // end the game at the first unacceptable output
	// Warmup suppresses the check for the first Warmup steps, where
	// rounding granularity dominates tiny truths.
	Warmup int
}

// Run plays alg against adv. truth extracts the tracked statistic from the
// exact frequency vector; check decides acceptability per step. It is
// RunTarget specialized to the in-process estimator target, whose
// operations cannot fail.
func Run(alg sketch.Estimator, adv Adversary, truth func(*stream.Freq) float64, check Check, cfg Config) Result {
	res, _ := RunTarget(NewEstimatorTarget(alg), adv, truth, check, cfg)
	return res
}

// RunTarget plays any Target — a bare estimator, a sharded engine, or a
// sketchd tenant over HTTP — against adv: each round the adversary (who
// has seen every previous response) picks an update, the target ingests
// it and publishes its estimate, and the runner judges the estimate
// against exact ground truth tracked on its own side of the Target
// interface (the target never sees it). A transport or lifecycle error
// aborts the campaign, returning the rounds completed so far alongside
// the error.
func RunTarget(tgt Target, adv Adversary, truth func(*stream.Freq) float64, check Check, cfg Config) (Result, error) {
	var res Result
	f := stream.NewFreq()
	last := 0.0
	for step := 0; cfg.MaxSteps <= 0 || step < cfg.MaxSteps; step++ {
		u, ok := adv.Next(last, step)
		if !ok {
			break
		}
		if err := tgt.Update(u.Item, u.Delta); err != nil {
			return res, fmt.Errorf("game: update at round %d: %w", step+1, err)
		}
		f.Apply(u)
		est, err := tgt.Estimate()
		if err != nil {
			return res, fmt.Errorf("game: estimate at round %d: %w", step+1, err)
		}
		tru := truth(f)
		res.Steps++
		if cfg.Record {
			res.Estimates = append(res.Estimates, est)
			res.Truths = append(res.Truths, tru)
		}
		if tru != 0 {
			rel := (est - tru) / tru
			if rel < 0 {
				rel = -rel
			}
			if rel > res.MaxRelErr {
				res.MaxRelErr = rel
			}
		}
		if step >= cfg.Warmup && !res.Broken && !check(est, tru) {
			res.Broken = true
			res.BrokenAt = res.Steps
			res.BrokenEst = est
			res.BrokenTru = tru
			if cfg.StopOnBreak {
				break
			}
		}
		last = est
	}
	return res, nil
}
