package repro

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/client"
)

// Crash-recovery acceptance tests: build the real sketchd binary, run it
// as a child process with a durable data directory, SIGKILL it mid-stream,
// corrupt the WAL tail the way a torn write would, restart, and verify
// every tenant — spec, policy, stream model, flip-budget state, estimate —
// comes back as the acknowledged stream left it.

var (
	sketchdBinOnce sync.Once
	sketchdBinPath string
	sketchdBinErr  error
)

// sketchdBin builds cmd/sketchd once per test process.
func sketchdBin(t *testing.T) string {
	t.Helper()
	sketchdBinOnce.Do(func() {
		dir, err := os.MkdirTemp("", "sketchd-bin-")
		if err != nil {
			sketchdBinErr = err
			return
		}
		sketchdBinPath = filepath.Join(dir, "sketchd")
		out, err := exec.Command("go", "build", "-o", sketchdBinPath, "./cmd/sketchd").CombinedOutput()
		if err != nil {
			sketchdBinErr = fmt.Errorf("go build ./cmd/sketchd: %v\n%s", err, out)
		}
	})
	if sketchdBinErr != nil {
		t.Fatal(sketchdBinErr)
	}
	return sketchdBinPath
}

// reservePort picks a free loopback port the child can bind. The kernel
// rarely reassigns it between Close and the exec, and the crash test
// needs a stable address across a restart so in-flight client retries
// reconnect to the reborn process.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

type sketchdProc struct {
	cmd  *exec.Cmd
	addr string
	done chan error // cmd.Wait result
}

// startSketchd launches the binary and blocks until its "listening on"
// log line reports the bound address.
func startSketchd(t *testing.T, bin string, args ...string) *sketchdProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j > 0 {
					select {
					case addrc <- rest[:j]:
					default:
					}
				}
			}
		}
	}()
	done := make(chan error, 1)
	go func() {
		done <- cmd.Wait()
		close(done) // later receives (the cleanup) see a closed channel
	}()
	p := &sketchdProc{cmd: cmd, done: done}
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-done
	})
	select {
	case p.addr = <-addrc:
		return p
	case err := <-done:
		t.Fatalf("sketchd exited before listening: %v", err)
	case <-time.After(15 * time.Second):
		t.Fatal("sketchd never reported its listen address")
	}
	return nil
}

// TestCrashRecoveryE2E is the headline fault-injection test:
//
//  1. four tenants — mergeable f2, point-query countsketch, robust
//     f2+switching, turnstile f2 with live deletions — ingest under
//     -fsync always;
//  2. SIGKILL mid-stream while a client batch is in flight;
//  3. garbage appended to the WAL tail (torn final record);
//  4. restart on the same address, racing the client's UpdateRetry loop;
//  5. every quiet tenant's estimate must equal its pre-crash value
//     exactly, the in-flight tenant's estimate must be within ε of its
//     at-least-once delivery window, and spec/policy/model/flip-budget
//     state must all survive;
//  6. SIGTERM then drains cleanly with exit code 0.
func TestCrashRecoveryE2E(t *testing.T) {
	bin := sketchdBin(t)
	dir := t.TempDir()
	addr := reservePort(t)
	args := []string{
		"-addr", addr, "-data-dir", dir, "-fsync", "always",
		"-checkpoint-every", "512", "-seed", "42", "-shards", "2", "-eps", "0.25",
	}
	proc := startSketchd(t, bin, args...)
	ctx := context.Background()
	c := client.New("http://"+addr, &http.Client{Timeout: 10 * time.Second})

	if err := c.CreateKey(ctx, "plain", "f2"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateKey(ctx, "hot", "countsketch"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateKeyPolicy(ctx, "robust", "f2", "switching"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTenant(ctx, "turn", client.TenantSpec{Sketch: "f2", Model: "turnstile"}); err != nil {
		t.Fatal(err)
	}

	// Phase 1: fully acknowledged traffic into every tenant.
	var batch []client.Update
	for i := 0; i < 1280; i++ {
		batch = append(batch, client.Update{Item: uint64(i % 193), Delta: 1})
		if len(batch) == 128 {
			for _, key := range []string{"plain", "hot", "robust"} {
				if err := c.Update(ctx, key, batch); err != nil {
					t.Fatalf("phase-1 update %s: %v", key, err)
				}
			}
			batch = batch[:0]
		}
	}
	for i := 0; i < 300; i++ {
		batch = append(batch, client.Update{Item: uint64(i % 37), Delta: 2})
	}
	for i := 0; i < 150; i++ {
		batch = append(batch, client.Update{Item: uint64(i % 37), Delta: -1})
	}
	if err := c.Update(ctx, "turn", batch); err != nil {
		t.Fatal(err)
	}

	// The pre-crash acknowledged baseline, flushed.
	preCrash := make(map[string]float64)
	for _, key := range []string{"plain", "hot", "robust", "turn"} {
		v, err := c.Estimate(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		preCrash[key] = v
	}

	// Phase 2: a feeder streams fresh unique items into "plain" via
	// UpdateRetry while we kill the server under it. Every batch the
	// feeder completes was acknowledged (pre-kill batches by the old
	// process, straddling/post-restart ones by the new); at most the one
	// straddling batch can be double-applied (at-least-once).
	const feedBatch = 64
	feederStop := make(chan struct{})
	feederDone := make(chan int, 1) // completed batches
	go func() {
		seq := uint64(1 << 20)
		n := 0
		for {
			us := make([]client.Update, feedBatch)
			for i := range us {
				us[i] = client.Update{Item: seq, Delta: 1}
				seq++
			}
			if err := c.UpdateRetry(ctx, "plain", us); err != nil {
				t.Errorf("feeder: %v", err)
				break
			}
			n++
			select {
			case <-feederStop:
				feederDone <- n
				return
			default:
			}
		}
		feederDone <- n
	}()

	time.Sleep(100 * time.Millisecond) // let the feeder get batches in flight
	if err := proc.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-proc.done

	// Torn tail: a crash mid-append leaves a partial record. Boot must
	// truncate it, not refuse to start.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s (err=%v)", dir, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xca, 0xfe, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Restart on the same address: the feeder's UpdateRetry loop is
	// hammering connection-refused right now and must reconnect and
	// converge on its own.
	proc2 := startSketchd(t, bin, args...)
	close(feederStop)
	var fed int
	select {
	case fed = <-feederDone:
	case <-time.After(30 * time.Second):
		t.Fatal("feeder did not converge after restart")
	}
	if t.Failed() {
		t.FailNow()
	}

	// Quiet tenants: recovery replays exactly the acknowledged stream, and
	// sketches are deterministic given the recovered seed — so estimates
	// match the pre-crash values bit for bit.
	for _, key := range []string{"hot", "robust", "turn"} {
		got, err := c.Estimate(ctx, key)
		if err != nil {
			t.Fatalf("estimate %s after crash: %v", key, err)
		}
		if got != preCrash[key] {
			t.Errorf("estimate %s = %v after crash, want pre-crash %v", key, got, preCrash[key])
		}
	}
	// The fed tenant: its F2 truth is preCrash(plain)'s stream plus fed
	// unique items — each delivered at least once, and only the single
	// straddling batch can be doubled (a double-applied unique item
	// contributes 4, not 1, to F2). ε bounds on both sides.
	const eps = 0.25
	got, err := c.Estimate(ctx, "plain")
	if err != nil {
		t.Fatal(err)
	}
	f2Phase1 := 0.0
	{
		counts := map[uint64]int64{}
		for i := 0; i < 1280; i++ {
			counts[uint64(i%193)]++
		}
		for _, v := range counts {
			f2Phase1 += float64(v * v)
		}
	}
	low := (1 - eps) * (f2Phase1 + float64(fed*feedBatch))
	high := (1 + eps) * (f2Phase1 + float64(fed*feedBatch) + 3*feedBatch)
	if got < low || got > high {
		t.Errorf("fed tenant estimate %v outside [%v, %v] (fed %d batches)", got, low, high, fed)
	}

	// Specs, policies, stream models, and flip-budget state all survive.
	ks, err := c.KeyStats(ctx, "robust")
	if err != nil {
		t.Fatal(err)
	}
	if ks.Policy != "switching" || ks.Robustness == nil {
		t.Errorf("robust tenant recovered as policy=%q robustness=%v, want switching with state", ks.Policy, ks.Robustness)
	}
	ks, err = c.KeyStats(ctx, "turn")
	if err != nil {
		t.Fatal(err)
	}
	if ks.Model != "turnstile" {
		t.Errorf("turnstile tenant recovered with model %q", ks.Model)
	}
	if ks.DeletedMass == 0 {
		t.Error("turnstile deletions lost across crash recovery")
	}
	ks, err = c.KeyStats(ctx, "hot")
	if err != nil {
		t.Fatal(err)
	}
	if !ks.PointQueries {
		t.Error("countsketch tenant lost point-query capability across recovery")
	}

	// Clean exit: SIGTERM drains, checkpoints, and exits 0.
	if err := proc2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-proc2.done:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sketchd did not exit after SIGTERM")
	}

	// One more boot proves the clean-shutdown checkpoints load too.
	startSketchd(t, bin, args...)
	for _, key := range []string{"hot", "robust", "turn"} {
		got, err := c.Estimate(ctx, key)
		if err != nil {
			t.Fatalf("estimate %s after clean restart: %v", key, err)
		}
		if got != preCrash[key] {
			t.Errorf("estimate %s = %v after clean restart, want %v", key, got, preCrash[key])
		}
	}
}

// TestSecondSignalForceKills pins the shutdown bugfix: with an in-flight
// request pinning the drain (a connection that never finishes sending its
// body), the first SIGTERM starts a graceful drain — and a second SIGTERM
// must kill the process immediately instead of being swallowed by the
// still-installed signal handler.
func TestSecondSignalForceKills(t *testing.T) {
	bin := sketchdBin(t)
	proc := startSketchd(t, bin, "-addr", "127.0.0.1:0", "-drain-timeout", "60s")

	conn, err := net.Dial("tcp", proc.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "POST /v1/update?key=k HTTP/1.1\r\nHost: x\r\nContent-Length: 1000\r\n\r\n{"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)

	if err := proc.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-proc.done:
		t.Fatalf("exited after one SIGTERM despite the hung request (err=%v); drain should still be waiting", err)
	case <-time.After(500 * time.Millisecond):
	}

	if err := proc.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-proc.done: // killed by the re-armed default disposition
	case <-time.After(3 * time.Second):
		t.Fatal("second SIGTERM did not kill the process: the handler swallowed it")
	}
}
