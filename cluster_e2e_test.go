package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

// Cluster acceptance test: build the real sketchd binary, run three of
// them as one cluster on loopback (R=2, fast ship and probe cadences,
// shared seed), place tenants on a chosen victim via the placement
// endpoint, SIGKILL the victim while a feeder is streaming into one of
// its keyspaces, and verify:
//
//   - the feeder (client.UpdateRetry against a survivor) rides the
//     redirect-to-dead-owner window out and converges on the promoted
//     replica;
//   - keyspaces quiet since the last shipment survive failover with
//     bit-identical estimates (the replica's copy is the owner's
//     shipment, and shared seeds make restored sketches deterministic);
//   - the streamed keyspace's estimate lands in an ε envelope that
//     charges the replication staleness window against the bound (acked
//     but unshipped batches on the victim are the documented loss);
//   - a global top-k over a Zipf stream, asked of a survivor, redirects
//     to the promoted owner and returns the true heavy hitters with
//     weights within ε·‖f‖₂ of the exact feeder-tracked counts.

func clusterPlace(t *testing.T, base, key string) (owner string, replicas []string) {
	t.Helper()
	resp, err := http.Get(base + "/cluster/place?key=" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr struct {
		Owner    string   `json:"owner"`
		Replicas []string `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	return pr.Owner, pr.Replicas
}

// keyOwnedBy generates key names until placement puts one where wanted
// says (owner == victim or owner != victim).
func keyOwnedBy(t *testing.T, base, prefix, victim string, ownedByVictim bool) string {
	t.Helper()
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("%s-%d", prefix, i)
		owner, _ := clusterPlace(t, base, key)
		if (owner == victim) == ownedByVictim {
			return key
		}
	}
	t.Fatalf("no %s key with ownedByVictim=%v in 64 tries", prefix, ownedByVictim)
	return ""
}

func TestClusterFailoverE2E(t *testing.T) {
	bin := sketchdBin(t)
	const eps = 0.25
	addrs := []string{reservePort(t), reservePort(t), reservePort(t)}
	urls := make([]string, len(addrs))
	for i, a := range addrs {
		urls[i] = "http://" + a
	}
	peers := strings.Join(urls, ",")
	procs := make([]*sketchdProc, len(addrs))
	for i := range addrs {
		procs[i] = startSketchd(t, bin,
			"-addr", addrs[i], "-node", urls[i], "-peers", peers,
			"-replicas", "2", "-ship-interval", "150ms",
			"-probe-interval", "100ms", "-suspect-after", "2",
			"-seed", "42", "-shards", "2", "-eps", fmt.Sprint(eps))
	}
	ctx := context.Background()

	// The victim is whoever owns the Zipf keyspace; every client in the
	// test talks to a survivor and lets forwarding find the owner.
	const hotKey = "hot-tenant"
	victim, hotReplicas := clusterPlace(t, urls[0], hotKey)
	if len(hotReplicas) != 2 {
		t.Fatalf("replica set %v, want 2 members", hotReplicas)
	}
	victimIdx := -1
	surv := ""
	for i, u := range urls {
		if u == victim {
			victimIdx = i
		} else if surv == "" {
			surv = u
		}
	}
	if victimIdx < 0 {
		t.Fatalf("placement returned non-member owner %q", victim)
	}
	vicF2 := keyOwnedBy(t, urls[0], "vf2", victim, true)
	survF2 := keyOwnedBy(t, urls[0], "sf2", victim, false)
	c := client.New(surv, &http.Client{Timeout: 10 * time.Second})

	for key, sk := range map[string]string{vicF2: "f2", survF2: "f2", hotKey: "countsketch"} {
		if err := c.CreateKey(ctx, key, sk); err != nil {
			t.Fatalf("create %s: %v", key, err)
		}
	}

	// Phase 1: known streams. vicF2 gets 1000 updates over 97 items (exact
	// F2 is computable); hotKey gets a Zipf stream with exact counts
	// tracked; survF2 gets a smaller stream on the survivor side.
	var batch []client.Update
	flush := func(key string) {
		if err := c.Update(ctx, key, batch); err != nil {
			t.Fatalf("phase-1 %s: %v", key, err)
		}
		batch = batch[:0]
	}
	phase1F2 := 0.0
	{
		counts := map[uint64]int64{}
		for i := 0; i < 1000; i++ {
			item := uint64(i % 97)
			counts[item]++
			batch = append(batch, client.Update{Item: item, Delta: 1})
			if len(batch) == 200 {
				flush(vicF2)
			}
		}
		flush(vicF2)
		for _, v := range counts {
			phase1F2 += float64(v * v)
		}
	}
	for i := 0; i < 500; i++ {
		batch = append(batch, client.Update{Item: uint64(i % 53), Delta: 1})
	}
	flush(survF2)

	hotCounts := map[uint64]int64{}
	{
		z := rand.NewZipf(rand.New(rand.NewSource(99)), 1.4, 1, 499)
		for i := 0; i < 4000; i++ {
			item := 5000 + z.Uint64()
			hotCounts[item]++
			batch = append(batch, client.Update{Item: item, Delta: 1})
			if len(batch) == 250 {
				flush(hotKey)
			}
		}
	}
	l2hot := 0.0
	for _, v := range hotCounts {
		l2hot += float64(v * v)
	}
	l2hot = math.Sqrt(l2hot)

	preKill := map[string]float64{}
	for _, key := range []string{vicF2, survF2, hotKey} {
		v, err := c.Estimate(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		preKill[key] = v
	}

	// Deterministic replication floor: make the victim ship everything it
	// owns right now, instead of trusting test timing against the cadence.
	resp, err := http.Post(victim+"/cluster/ship-now", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var shipped struct {
		Shipped int `json:"shipped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&shipped); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if shipped.Shipped < 2 {
		t.Fatalf("victim ship-now applied %d shipments, want >= 2 (vicF2 and hotKey)", shipped.Shipped)
	}

	// The feeder streams unique items into the victim-owned keyspace via
	// UpdateRetry and never stops during the kill: redirects to the dead
	// owner surface as transport errors, which re-send the batch until the
	// survivors' detector promotes the replica and forwarding re-routes.
	const feedBatch = 64
	var acked atomic.Int64
	feederStop := make(chan struct{})
	feederDone := make(chan struct{})
	go func() {
		defer close(feederDone)
		seq := uint64(1 << 20)
		for {
			us := make([]client.Update, feedBatch)
			for i := range us {
				us[i] = client.Update{Item: seq, Delta: 1}
				seq++
			}
			if err := c.UpdateRetry(ctx, vicF2, us); err != nil {
				t.Errorf("feeder: %v", err)
				return
			}
			acked.Add(1)
			select {
			case <-feederStop:
				return
			default:
			}
		}
	}()

	time.Sleep(300 * time.Millisecond) // feeder in full flight
	if err := procs[victimIdx].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-procs[victimIdx].done
	// Batches acked up to here may have died with the victim (acked but
	// not yet shipped — the documented staleness window). Batches acked
	// after this point landed on the promoted owner.
	ackedPre := acked.Load()

	time.Sleep(2 * time.Second) // detector converges, feeder keeps going
	close(feederStop)
	select {
	case <-feederDone:
	case <-time.After(30 * time.Second):
		t.Fatal("feeder did not converge after failover")
	}
	if t.Failed() {
		t.FailNow()
	}
	ackedTotal := acked.Load()
	if ackedTotal <= ackedPre {
		t.Fatalf("no batches acknowledged after failover (pre=%d total=%d)", ackedPre, ackedTotal)
	}

	// Quiet keyspaces: the survivor-owned one never left its owner, and
	// the victim-owned Zipf one was shipped and untouched since — both
	// estimates must survive bit for bit.
	for _, key := range []string{survF2, hotKey} {
		got, err := c.Estimate(ctx, key)
		if err != nil {
			t.Fatalf("estimate %s after failover: %v", key, err)
		}
		if got != preKill[key] {
			t.Errorf("estimate %s = %v after failover, want exactly %v", key, got, preKill[key])
		}
	}

	// The streamed keyspace: phase-1 state was shipped, post-failover
	// batches landed on the promoted owner, and pre-kill feeder batches
	// are the at-most-one-ship-interval staleness loss. Lower bound
	// charges all of them; upper bound allows every ack plus duplicate
	// slack (an at-least-once retry of a unique-item batch adds 3 per
	// item to F2).
	got, err := c.Estimate(ctx, vicF2)
	if err != nil {
		t.Fatal(err)
	}
	low := (1 - eps) * (phase1F2 + float64(ackedTotal-ackedPre)*feedBatch)
	high := (1 + eps) * (phase1F2 + float64(ackedTotal)*feedBatch + 4*feedBatch)
	if got < low || got > high {
		t.Errorf("failed-over estimate %v outside [%v, %v] (acked %d pre-kill, %d total)",
			got, low, high, ackedPre, ackedTotal)
	}

	// Global top-k through a survivor: the query redirects to the promoted
	// owner and must return the true Zipf heavy hitters, each weight
	// within ε·‖f‖₂ of the exact tracked count.
	qbody, _ := json.Marshal(server.QueryRequest{
		Key: hotKey, Queries: []server.Query{{Kind: server.QueryTopK, K: 10}},
	})
	qresp, err := http.Post(surv+"/cluster/query", "application/json", bytes.NewReader(qbody))
	if err != nil {
		t.Fatal(err)
	}
	qraw, _ := io.ReadAll(qresp.Body)
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("global topk status %d: %s", qresp.StatusCode, qraw)
	}
	var qr server.QueryResponse
	if err := json.Unmarshal(qraw, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Answers) != 1 || len(qr.Answers[0].Items) == 0 {
		t.Fatalf("global topk returned no items: %s", qraw)
	}
	returned := map[uint64]float64{}
	for _, iw := range qr.Answers[0].Items {
		returned[uint64(iw.Item)] = iw.Weight
		if true2 := float64(hotCounts[uint64(iw.Item)]); math.Abs(iw.Weight-true2) > eps*l2hot {
			t.Errorf("topk weight for %d = %v, true count %v, |err| > ε·‖f‖₂ = %v",
				uint64(iw.Item), iw.Weight, true2, eps*l2hot)
		}
	}
	type kv struct {
		item  uint64
		count int64
	}
	var truth []kv
	for it, ct := range hotCounts {
		truth = append(truth, kv{it, ct})
	}
	sort.Slice(truth, func(i, j int) bool { return truth[i].count > truth[j].count })
	for _, hh := range truth[:3] {
		if _, ok := returned[hh.item]; !ok {
			t.Errorf("true heavy hitter %d (count %d) missing from global topk", hh.item, hh.count)
		}
	}

	// The survivors' view and health: victim down, nodes ready.
	deadline := time.Now().Add(5 * time.Second)
	for {
		sresp, err := http.Get(surv + "/cluster/status")
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Peers []struct {
				Addr string `json:"addr"`
				Down bool   `json:"down"`
			} `json:"peers"`
		}
		err = json.NewDecoder(sresp.Body).Decode(&st)
		sresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		downSeen := false
		for _, p := range st.Peers {
			if p.Addr == victim && p.Down {
				downSeen = true
			}
		}
		if downSeen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("survivor never marked the victim down in /cluster/status")
		}
		time.Sleep(50 * time.Millisecond)
	}
	h, ready, err := c.Healthz(ctx)
	if err != nil || !ready || h.Status != "ok" {
		t.Fatalf("survivor healthz: status=%+v ready=%v err=%v", h, ready, err)
	}

	// Clean shutdown of the survivors still exits 0 with the cluster
	// loops running.
	for i, p := range procs {
		if i == victimIdx {
			continue
		}
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-p.done:
			if err != nil {
				t.Fatalf("survivor %d SIGTERM exit: %v", i, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("survivor %d did not exit after SIGTERM", i)
		}
	}
}
