package repro

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"

	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/stream"
)

// bootV2 starts a sketchd instance on a loopback listener.
func bootV2(t *testing.T, cfg server.Config) *client.Client {
	t.Helper()
	srv := server.New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(srv.Drain)
	return client.New(hs.URL, hs.Client())
}

// TestV2TopKHeavyHittersOverHTTP is the structured-query acceptance test:
// a countsketch+ring tenant — the Theorem 6.5 coupled norm-ring +
// frozen-CountSketch construction — declared via TenantSpec over loopback
// HTTP answers POST /v2/query topk with the true heavy hitters of a Zipf
// stream, every reported weight inside the tenant's ε·‖f‖₂ point-query
// bound, with ground truth tracked client-side only.
func TestV2TopKHeavyHittersOverHTTP(t *testing.T) {
	const eps = 0.25
	c := bootV2(t, server.Config{Delta: 0.05, N: 1 << 20, Seed: 17, MaxKeys: 4})
	ctx := context.Background()

	ks, err := c.CreateTenant(ctx, "hot", client.TenantSpec{
		Sketch: "countsketch", Policy: "ring", Eps: eps, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ks.PointQueries || ks.Policy != "ring" {
		t.Fatalf("tenant did not resolve to a point-querying ring cell: %+v", ks)
	}

	truth := stream.NewFreq()
	gen := stream.NewZipf(1<<10, 30000, 1.3, 21)
	var ups []client.Update
	for {
		u, ok := gen.Next()
		if !ok {
			break
		}
		truth.Apply(u)
		ups = append(ups, client.Update{Item: u.Item, Delta: u.Delta})
	}
	if err := c.Update(ctx, "hot", ups); err != nil {
		t.Fatal(err)
	}

	resp, err := c.Query(ctx, "hot", []client.Query{{Kind: server.QueryTopK, K: 10}})
	if err != nil {
		t.Fatal(err)
	}
	top := resp.Answers[0]
	if len(top.Items) == 0 {
		t.Fatal("topk answer is empty")
	}
	if resp.Robustness == nil || resp.Robustness.Policy != "ring" {
		t.Errorf("query response does not carry the ring tenant's robustness state: %+v", resp.Robustness)
	}

	bound := eps * truth.L2()
	if top.ErrorBound <= 0 || top.ErrorBound > 2*bound {
		t.Errorf("server-reported bound %v implausible vs ε·‖f‖₂ = %v", top.ErrorBound, bound)
	}
	reported := map[uint64]bool{}
	for _, iw := range top.Items {
		reported[uint64(iw.Item)] = true
		if diff := math.Abs(iw.Weight - float64(truth.Count(uint64(iw.Item)))); diff > bound {
			t.Errorf("topk weight for %d = %v, true %d: error %v > ε·‖f‖₂ = %v",
				uint64(iw.Item), iw.Weight, truth.Count(uint64(iw.Item)), diff, bound)
		}
	}
	// Definition 6.1 semantics with slack: every item ε-heavy with margin
	// must surface. On Zipf(1.3) that is the handful of head items.
	mustHave := truth.HeavyHitters(2 * bound)
	if len(mustHave) == 0 {
		t.Fatal("stream produced no 2ε·L2-heavy items; test is vacuous")
	}
	for _, item := range mustHave {
		if !reported[item] {
			t.Errorf("true heavy hitter %d (count %d ≥ 2ε·‖f‖₂ = %v) missing from topk %v",
				item, truth.Count(item), 2*bound, top.Items)
		}
	}
}

// pointTarget is one tenant under the adaptive point-query campaign.
type pointTarget struct {
	c   *client.Client
	key string
}

func (p pointTarget) update(ctx context.Context, t *testing.T, item uint64, delta int64) {
	t.Helper()
	if err := p.c.Update(ctx, p.key, []client.Update{{Item: item, Delta: delta}}); err != nil {
		t.Fatalf("%s update: %v", p.key, err)
	}
}

func (p pointTarget) query(ctx context.Context, t *testing.T, item uint64) float64 {
	t.Helper()
	v, _, err := p.c.QueryPoint(ctx, p.key, item)
	if err != nil {
		t.Fatalf("%s point query: %v", p.key, err)
	}
	return v
}

// TestAdaptivePointQueryCampaignOverHTTP is the point-query counterpart
// of the adaptive AMS regression: an adversary that reacts to its own
// point-query answers drives a static countsketch tenant's estimate of a
// fixed target coordinate outside the ε·‖f‖₂ envelope, while a robust
// countsketch+ring tenant (frozen-CountSketch point queries, Theorem 6.5)
// fed the identical stream and query load holds the envelope for the
// whole campaign.
//
// The attack is the greedy collision finder: probe a fresh candidate item
// with a unit insert, watch whether the victim's published estimate of
// the target moved up — that leaks that the candidate shares sign-aligned
// buckets with the target in median-deciding rows — and pump mass into
// exactly the candidates that moved it. Selection correlates the stream
// with the victim's hash randomness; against the frozen robust tenant the
// probes answer from a copy whose randomness the current inserts cannot
// chase.
func TestAdaptivePointQueryCampaignOverHTTP(t *testing.T) {
	const (
		envelope   = 0.3  // the ε·‖f‖₂ acceptance envelope for both tenants
		victimEps  = 0.5  // wide victim sketch: the Theorem 9.1-style single-sketch setting
		robustEps  = 0.25 // robust tenant's own declared ε (≤ envelope with margin)
		target     = uint64(7777)
		targetMass = int64(50)
		probeDelta = int64(1)
		pumpDelta  = int64(50)
		maxProbes  = 1500
		warmup     = 8
	)
	ctx := context.Background()

	// Single-shard tenants so the adversary faces exactly one sketch.
	vc := bootV2(t, server.Config{Delta: 0.05, N: 1 << 20, Seed: 31, MaxKeys: 4})
	gc := bootV2(t, server.Config{Delta: 0.05, N: 1 << 20, Seed: 32, MaxKeys: 4})
	if _, err := vc.CreateTenant(ctx, "victim", client.TenantSpec{
		Sketch: "countsketch", Policy: "none", Eps: victimEps, Shards: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := gc.CreateTenant(ctx, "guard", client.TenantSpec{
		Sketch: "countsketch", Policy: "ring", Eps: robustEps, Shards: 1,
	}); err != nil {
		t.Fatal(err)
	}
	victim := pointTarget{vc, "victim"}
	guard := pointTarget{gc, "guard"}

	truth := stream.NewFreq()
	send := func(item uint64, delta int64) {
		victim.update(ctx, t, item, delta)
		guard.update(ctx, t, item, delta)
		truth.Apply(stream.Update{Item: item, Delta: delta})
	}

	send(target, targetMass)

	brokenAt := 0
	var brokenErr, brokenBound float64
	for probe := 0; probe < maxProbes; probe++ {
		cand := uint64(1_000_000 + probe)
		before := victim.query(ctx, t, target)
		send(cand, probeDelta)
		after := victim.query(ctx, t, target)
		if after > before {
			// The candidate's insert moved the target's published median
			// up: sign-aligned collision in a median-deciding row. Pump it.
			send(cand, pumpDelta)
		}

		// Judge both tenants against ground truth the servers never see.
		bound := envelope * truth.L2()
		gErr := math.Abs(guard.query(ctx, t, target) - float64(truth.Count(target)))
		if probe >= warmup && gErr > bound {
			t.Fatalf("robust guard left the envelope at probe %d: |err| %.1f > %.1f", probe+1, gErr, bound)
		}
		vErr := math.Abs(after - float64(truth.Count(target)))
		if probe >= warmup && vErr > bound {
			brokenAt, brokenErr, brokenBound = probe+1, vErr, bound
			break
		}
	}
	if brokenAt == 0 {
		t.Fatalf("adaptive point-query attack failed to push the static countsketch tenant outside ε·‖f‖₂ in %d probes", maxProbes)
	}
	t.Logf("static countsketch point query broken at probe %d (|err| %.1f > ε·‖f‖₂ = %.1f); robust ring tenant held ≤ %.2f·‖f‖₂ throughout",
		brokenAt, brokenErr, brokenBound, envelope)
}
