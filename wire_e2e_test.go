package repro

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/wire"
)

// bootCodec starts a sketchd instance and returns a client pinned to the
// given wire codec.
func bootCodec(t *testing.T, cfg server.Config, codec client.Codec) (*client.Client, *httptest.Server) {
	t.Helper()
	srv := server.New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(srv.Drain)
	return client.New(hs.URL, hs.Client(), client.WithCodec(codec)), hs
}

// TestCrossCodecSnapshotIdentity is the codec-equivalence acceptance
// test: the same stream ingested through the JSON codec and through
// binary frames must leave byte-identical sketch state, proven via
// /v1/snapshot on two servers with identical configs and seeds. The grid
// covers every mergeable (policy none) base sketch in its insertion
// model, plus the signed columns under turnstile where deletions flow
// natively — and the stream includes ids at and above 2^53, where JSON
// needs the string-or-number U64 rule but binary carries native u64.
func TestCrossCodecSnapshotIdentity(t *testing.T) {
	cells := []struct {
		name string
		spec client.TenantSpec
	}{
		{"f2-insertion", client.TenantSpec{Sketch: "f2"}},
		{"kmv-insertion", client.TenantSpec{Sketch: "kmv"}},
		{"countsketch-insertion", client.TenantSpec{Sketch: "countsketch"}},
		{"cc-insertion", client.TenantSpec{Sketch: "cc"}},
		{"f2-turnstile", client.TenantSpec{Sketch: "f2", Model: "turnstile", Lambda: 64}},
		{"countsketch-turnstile", client.TenantSpec{Sketch: "countsketch", Model: "turnstile", Lambda: 64}},
	}
	for _, cell := range cells {
		t.Run(cell.name, func(t *testing.T) {
			cfg := server.Config{Shards: 2, Seed: 42, DefaultSketch: "f2"}
			jc, _ := bootCodec(t, cfg, client.CodecJSON)
			bc, _ := bootCodec(t, cfg, client.CodecBinary)
			ctx := context.Background()

			for _, c := range []*client.Client{jc, bc} {
				if _, err := c.CreateTenant(ctx, "k", cell.spec); err != nil {
					t.Fatal(err)
				}
			}

			signed := cell.spec.Model == "turnstile"
			rng := rand.New(rand.NewSource(7))
			var batch []client.Update
			for i := 0; i < 4096; i++ {
				u := client.Update{Item: rng.Uint64() >> (rng.Intn(40) + 4), Delta: 1}
				if i%17 == 0 {
					// Ids at and beyond 2^53: JSON must take the string
					// form, binary is native.
					u.Item = (1 << 53) + uint64(i)
				}
				if signed && i%5 == 4 {
					// Delete something previously inserted so turnstile
					// streams genuinely go both ways without breaching the
					// insertion-model floor.
					u = batch[rng.Intn(len(batch))]
					u.Delta = -1
				}
				batch = append(batch, u)
			}
			for off := 0; off < len(batch); off += 512 {
				end := off + 512
				if end > len(batch) {
					end = len(batch)
				}
				for _, c := range []*client.Client{jc, bc} {
					if err := c.Update(ctx, "k", batch[off:end]); err != nil {
						t.Fatal(err)
					}
				}
			}

			jsnap, err := jc.Snapshot(ctx, "k")
			if err != nil {
				t.Fatal(err)
			}
			bsnap, err := bc.Snapshot(ctx, "k")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(jsnap, bsnap) {
				t.Fatalf("snapshots diverge across codecs: json %d bytes, binary %d bytes", len(jsnap), len(bsnap))
			}

			je, err := jc.Estimate(ctx, "k")
			if err != nil {
				t.Fatal(err)
			}
			be, err := bc.Estimate(ctx, "k")
			if err != nil {
				t.Fatal(err)
			}
			if je != be {
				t.Fatalf("estimates diverge across codecs: json %g, binary %g", je, be)
			}
		})
	}
}

// TestCrossCodecQueryAnswers: the same tenant answers the same /v2/query
// batch identically whether the batch travels as JSON or as query/answer
// frames — kinds, items, values, bounds, and robustness state all agree.
func TestCrossCodecQueryAnswers(t *testing.T) {
	srv := server.New(server.Config{Shards: 2, Seed: 5, DefaultSketch: "f2"})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(srv.Drain)
	jc := client.New(hs.URL, hs.Client(), client.WithCodec(client.CodecJSON))
	bc := client.New(hs.URL, hs.Client(), client.WithCodec(client.CodecBinary))
	ctx := context.Background()

	if _, err := jc.CreateTenant(ctx, "hh", client.TenantSpec{Sketch: "countsketch", Policy: "ring"}); err != nil {
		t.Fatal(err)
	}
	var batch []client.Update
	for i := uint64(1); i <= 40; i++ {
		w := int64(1)
		if i <= 4 {
			w = 500 // unmistakable heavy hitters
		}
		batch = append(batch, client.Update{Item: (1 << 53) + i, Delta: w})
	}
	if err := jc.Update(ctx, "hh", batch); err != nil {
		t.Fatal(err)
	}

	queries := []client.Query{
		{Kind: server.QueryEstimate},
		{Kind: server.QueryPoint, Item: server.U64(1<<53 + 1)},
		{Kind: server.QueryTopK, K: 4},
	}
	jresp, err := jc.Query(ctx, "hh", queries)
	if err != nil {
		t.Fatal(err)
	}
	bresp, err := bc.Query(ctx, "hh", queries)
	if err != nil {
		t.Fatal(err)
	}

	if jresp.Key != bresp.Key || jresp.Sketch != bresp.Sketch ||
		jresp.Policy != bresp.Policy || jresp.Model != bresp.Model {
		t.Fatalf("envelopes diverge: json %+v, binary %+v", jresp, bresp)
	}
	if len(jresp.Answers) != len(bresp.Answers) {
		t.Fatalf("answer counts diverge: json %d, binary %d", len(jresp.Answers), len(bresp.Answers))
	}
	for i := range jresp.Answers {
		ja, ba := jresp.Answers[i], bresp.Answers[i]
		if ja.Kind != ba.Kind || ja.Value != ba.Value || ja.ErrorBound != ba.ErrorBound || ja.Additive != ba.Additive {
			t.Errorf("answer %d diverges: json %+v, binary %+v", i, ja, ba)
		}
		if (ja.Item == nil) != (ba.Item == nil) || (ja.Item != nil && *ja.Item != *ba.Item) {
			t.Errorf("answer %d items diverge", i)
		}
		if len(ja.Items) != len(ba.Items) {
			t.Errorf("answer %d topk lengths diverge: %d vs %d", i, len(ja.Items), len(ba.Items))
			continue
		}
		for j := range ja.Items {
			if ja.Items[j] != ba.Items[j] {
				t.Errorf("answer %d item %d diverges: %+v vs %+v", i, j, ja.Items[j], ba.Items[j])
			}
		}
	}
	if (jresp.Robustness == nil) != (bresp.Robustness == nil) {
		t.Fatalf("robustness presence diverges")
	}
	if jresp.Robustness != nil && *jresp.Robustness != *bresp.Robustness {
		t.Fatalf("robustness diverges: json %+v, binary %+v", *jresp.Robustness, *bresp.Robustness)
	}
	// The ring tenant's topk must surface the planted heavy hitters under
	// both codecs (sanity that the answers are not trivially empty-equal).
	var top []server.ItemWeight
	for _, a := range bresp.Answers {
		if a.Kind == server.QueryTopK {
			top = a.Items
		}
	}
	if len(top) != 4 {
		t.Fatalf("topk answered %d items, want 4", len(top))
	}
	for _, iw := range top {
		if uint64(iw.Item) < 1<<53 || uint64(iw.Item) > 1<<53+4 {
			t.Errorf("topk surfaced item %d outside the planted heavy hitters", uint64(iw.Item))
		}
		if math.Abs(iw.Weight-500) > 250 {
			t.Errorf("topk weight %g for item %d far from planted 500", iw.Weight, uint64(iw.Item))
		}
	}
}

// TestBinaryIngestRejections pins the negotiation edges of /v2/update:
// an unknown Content-Type is a 415 before any body is read, a frame of
// the wrong type is a 400, and errors come back as JSON regardless of
// codec so every client can decode them.
func TestBinaryIngestRejections(t *testing.T) {
	srv := server.New(server.Config{Shards: 1, Seed: 1, DefaultSketch: "f2"})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(srv.Drain)

	post := func(ct string, body []byte) (int, string) {
		req, err := http.NewRequest(http.MethodPost, hs.URL+"/v2/update?key=k", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		resp, err := hs.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := post("application/x-msgpack", []byte("x")); code != http.StatusUnsupportedMediaType {
		t.Fatalf("unknown content type: HTTP %d (%s), want 415", code, body)
	}
	if code, body := post(wire.ContentType, []byte("not a frame")); code != http.StatusBadRequest {
		t.Fatalf("garbage frame: HTTP %d (%s), want 400", code, body)
	}
	// A well-formed frame of the wrong type (a query on the update
	// endpoint) must be rejected, not misparsed.
	q := wire.AppendQuery(nil, &wire.QueryRequest{Key: "k", Queries: []wire.Query{{Kind: wire.KindEstimate}}})
	if code, body := post(wire.ContentType, q); code != http.StatusBadRequest {
		t.Fatalf("query frame on update endpoint: HTTP %d (%s), want 400", code, body)
	}
	// Errors are JSON even when the request was binary.
	if _, body := post(wire.ContentType, []byte("not a frame")); !strings.Contains(body, `"error"`) {
		t.Fatalf("binary-request error reply is not JSON: %s", body)
	}
}
