package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/server"
)

// Cluster benchmark cells: what clustering costs over a single node.
// BenchmarkClusterIngestReplicated prices ingest on a 3-node R=2 ring
// against its single-node twin (BenchmarkSketchdIngest*): the owner's
// hot path is identical, so the delta is the background ship rounds
// stealing cycles and the forwarding hook on every request.
// BenchmarkClusterGlobalQuery prices a global query asked of a NON-owner
// — one 307 redirect plus the owner's answer — the cluster's
// read-path tax when clients do not know the placement.

type benchClusterNode struct {
	node *cluster.Node
	srv  *server.Server
	hs   *httptest.Server
}

type benchSwap struct{ h atomic.Pointer[http.Handler] }

func (s *benchSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load()).ServeHTTP(w, r)
}

// bootBenchCluster builds a 3-node in-process cluster with the ship and
// probe loops running, as a deployed cluster would have.
func bootBenchCluster(b *testing.B, sketchType string) []*benchClusterNode {
	b.Helper()
	nodes := make([]*benchClusterNode, 3)
	urls := make([]string, 3)
	for i := range nodes {
		hs := httptest.NewServer(&benchSwap{})
		nodes[i] = &benchClusterNode{hs: hs}
		urls[i] = hs.URL
	}
	for i := range nodes {
		srv := server.New(server.Config{
			Shards: 4, Eps: 0.3, Delta: 0.05, N: 1 << 20, Seed: 1,
			DefaultSketch: sketchType, MaxKeys: 64,
		})
		n, err := cluster.New(srv, cluster.Config{
			Self: urls[i], Peers: urls, Replicas: 2,
			ShipInterval: 100 * time.Millisecond, ProbeInterval: 100 * time.Millisecond,
			Forward: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		n.Start()
		h := n.Handler()
		nodes[i].hs.Config.Handler.(*benchSwap).h.Store(&h)
		nodes[i].node, nodes[i].srv = n, srv
		b.Cleanup(func() {
			n.Close()
			srv.Drain()
		})
	}
	for _, bn := range nodes {
		b.Cleanup(bn.hs.Close)
	}
	return nodes
}

// BenchmarkClusterIngestReplicated — replicated ingest overhead: batched
// updates into the keyspace owner of a 3-node R=2 cluster while the ship
// loop replicates behind the writes. Compare ns/op against
// BenchmarkSketchdIngestCountSketch for the single-node baseline.
func BenchmarkClusterIngestReplicated(b *testing.B) {
	if testing.Short() {
		b.Skip("loopback-HTTP cluster benchmark: binds TCP listeners and spins three servers; skipped under -short")
	}
	nodes := bootBenchCluster(b, "countsketch")
	const key = "load"
	var owner *benchClusterNode
	for _, bn := range nodes {
		if bn.node.Owner(key) == bn.hs.URL {
			owner = bn
		}
	}
	c := client.New(owner.hs.URL, &http.Client{Timeout: 30 * time.Second})
	ctx := context.Background()
	if err := c.CreateKey(ctx, key, "countsketch"); err != nil {
		b.Fatal(err)
	}
	var producer atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		base := producer.Add(1) << 40
		i := uint64(0)
		batch := make([]client.Update, 0, 512)
		for pb.Next() {
			batch = append(batch, client.Update{Item: dist.SplitMix64(base + i), Delta: 1})
			i++
			if len(batch) == cap(batch) {
				if err := c.Update(ctx, key, batch); err != nil {
					b.Error(err) // Fatal must not run on a RunParallel goroutine
					return
				}
				batch = batch[:0]
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(2, "replicas")
}

// BenchmarkClusterGlobalQuery — global-query latency on a 3-node
// cluster: a top-10 query posted to a node that does NOT own the
// keyspace, so every operation pays the placement redirect plus the
// owner's engine read.
func BenchmarkClusterGlobalQuery(b *testing.B) {
	if testing.Short() {
		b.Skip("loopback-HTTP cluster benchmark: binds TCP listeners and spins three servers; skipped under -short")
	}
	nodes := bootBenchCluster(b, "countsketch")
	const key = "global"
	var owner, other *benchClusterNode
	for _, bn := range nodes {
		if bn.node.Owner(key) == bn.hs.URL {
			owner = bn
		}
	}
	for _, bn := range nodes {
		if bn != owner {
			other = bn
			break
		}
	}
	c := client.New(owner.hs.URL, &http.Client{Timeout: 30 * time.Second})
	ctx := context.Background()
	if err := c.CreateKey(ctx, key, "countsketch"); err != nil {
		b.Fatal(err)
	}
	batch := make([]client.Update, 0, 512)
	for i := 0; i < 1<<14; i++ {
		batch = append(batch, client.Update{Item: uint64(i % 257), Delta: 1})
		if len(batch) == cap(batch) {
			if err := c.Update(ctx, key, batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	body, err := json.Marshal(server.QueryRequest{
		Key: key, Queries: []server.Query{{Kind: server.QueryTopK, K: 10}},
	})
	if err != nil {
		b.Fatal(err)
	}
	hc := &http.Client{Timeout: 30 * time.Second}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := hc.Post(other.hs.URL+"/cluster/query", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("global query status %d", resp.StatusCode)
		}
	}
}
