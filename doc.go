// Package repro is the root of a from-scratch Go reproduction of
// "A Framework for Adversarially Robust Streaming Algorithms"
// (Ben-Eliezer, Jayaram, Woodruff, Yogev — PODS 2020). The library lives
// under internal/ (see DESIGN.md for the package map), runnable examples
// under examples/, and the experiment harness under cmd/experiments. The
// root package holds the benchmark suite that regenerates every table and
// figure of the paper (bench_test.go).
package repro
