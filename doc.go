// Package repro is the root of a from-scratch Go reproduction of
// "A Framework for Adversarially Robust Streaming Algorithms"
// (Ben-Eliezer, Jayaram, Woodruff, Yogev — PODS 2020). The library lives
// under internal/ (see DESIGN.md for the package map), runnable examples
// under examples/, and the experiment harness under cmd/experiments. The
// root package holds the benchmark suite that regenerates every table and
// figure of the paper (bench_test.go).
//
// Package map, bottom to top:
//
//   - internal/hash, internal/dist, internal/prf, internal/codec — the
//     primitive layer: polynomial/tabulation hashing over a Mersenne
//     field, deterministic pseudorandom variates (SplitMix64, exponential,
//     p-stable and maximally skewed 1-stable via Chambers–Mallows–Stuck,
//     plus the MedianAbs calibration constant of Indyk's estimator), an
//     AES-based PRF, and the binary codec behind sketch marshaling.
//   - internal/sketch — the Estimator/Factory interfaces every algorithm
//     implements, plus the type-erased Codec over the mergeable types'
//     marshal/merge methods.
//   - internal/sketchtest — the conformance kit: update/estimate tracking
//     contract, fixed-seed determinism, declared duplicate-insensitivity,
//     codec round-trips, and the merge laws (zero identity,
//     associativity, linearity, seed-mismatch rejection). The server's
//     registry conformance test runs every hostable type through it.
//   - internal/f0, internal/fp, internal/heavyhitters, internal/entropy,
//     internal/cascaded — the static (non-robust) sketches.
//   - internal/core — the paper's generic robustifications: sketch
//     switching (§4), computation paths (§4), ε-rounding and flip-number
//     machinery (§3).
//   - internal/robust — the robustness policy layer and the assembled
//     robust estimators. robust.Policy names a transformation (none,
//     switching, ring, paths) and composes with any robust.Problem (the
//     per-statistic sizing: inner factory, ε₀ divisor, flip bound, value
//     range — plus the stream model) through one constructor,
//     Policy.Wrap — the full sketch × policy × model matrix from four
//     problem descriptors. robust.Model declares which streams the
//     guarantee quantifies over and selects the flip bound that sizes
//     the wrapper: InsertionModel (Proposition 3.4), TurnstileModel(λ)
//     (the Theorem 1.6 flip class S_λ), or BoundedDeletionModel(α)
//     (Lemma 8.2); LpProblemFor(p, model) builds the matching Fp
//     problem, switching to a signed inner sketch for the non-insertion
//     models, and invalid compositions (ring under deletions, non-Fp
//     statistics under a signed model) are rejected at Wrap time. The
//     per-theorem constructors (NewFp, NewF0, NewEntropy,
//     NewTurnstileFp, NewBoundedDeletionFp, …) are thin instances of
//     it — the model tests pin the latter two update-for-update against
//     the composition — and every wrapper reports its flip-budget
//     consumption through sketch.RobustnessReporter.
//   - internal/engine — a sharded, batched, concurrent ingest pipeline
//     that hash-routes updates to per-shard estimator instances (static
//     or robust), coalesces duplicates per batch, and recombines the
//     per-shard estimates into the global statistic (sums, power sums, or
//     the entropy chain rule). Batch buffers are pooled end to end, so
//     the steady-state ingest path allocates nothing per update
//     (TestSteadyStateZeroAllocs pins 0 allocs/op). It implements
//     sketch.Estimator, so it drops into any harness in the repository.
//   - internal/wire — the binary frame codec of the ingest spine:
//     length-prefixed, versioned frames for update batches and the v2
//     query/answer envelopes (fixed u64 item ids — no 2^53 JSON cliff —
//     with zigzag-varint deltas), encoded into and decoded from
//     caller-supplied buffers. Clients and servers negotiate it per
//     request via Content-Type/Accept ("application/x-sketch-frame");
//     JSON stays as the debug/compat codec with identical semantics,
//     pinned byte-for-byte by the cross-codec snapshot tests.
//   - internal/wal — the durability layer: a segmented, CRC-framed
//     write-ahead log whose update records are the wire codec's update
//     frames byte-for-byte (journaling is an append, not a re-encode),
//     plus per-tenant checkpoints through the CRC-bearing snapshot
//     envelope. Open truncates a torn tail and quarantines corrupt
//     segments instead of failing the boot; fsync policy (always |
//     batch | none) picks the ack-vs-throughput point.
//   - internal/server, internal/client — sketchd, the multi-tenant
//     network sketch service (cmd/sketchd): declarative tenants (POST
//     /v2/keys with a TenantSpec — each tenant a sketch × policy ×
//     stream-model combination sized from its own ε, δ, n, shards and
//     flip budget, plus λ for model=turnstile and α for
//     model=bounded_deletion, with the server Config demoted to
//     defaults and caps; the old robust-* names resolve as aliases and
//     the ?sketch=/?policy= v1 form stays as a thin alias; tenants
//     default to model=insertion and then reject negative deltas with
//     400 before anything from the batch is applied, while
//     turnstile/bounded-deletion tenants accept signed updates and
//     expose mass/deleted_mass telemetry), structured queries (POST
//     /v2/query:
//     estimate | point | topk batches answered with ε-derived error
//     bounds and flip-budget state — the Section 6 point-query and heavy
//     hitters machinery over HTTP, frozen-ring-backed for
//     countsketch+ring), batched ingest under both codecs (binary
//     frames on POST /v2/update, JSON with string-or-number uint64 item
//     ids on /v1/update and /v2/update alike — one shared apply core,
//     so codec choice never changes semantics), blocking and lock-free
//     reads, binary snapshot/merge between seed-compatible tenants,
//     per-keyspace engines created on demand under a quota, and
//     graceful drain (client.RetryTail resends only the unapplied tail
//     of a straddled batch, under either codec — error replies are
//     always JSON; client.UpdateRetry loops that protocol to completion
//     for at-least-once ingest across drains and restarts), and — with
//     -data-dir — crash durability: acknowledged updates are journaled
//     to the WAL before their ack, checkpoints bound replay, and boot
//     recovery restores bit-identical estimates (TestCrashRecoveryE2E
//     SIGKILLs a loaded server, corrupts the log tail, and asserts
//     exact estimate equality across restarts). The Go client sends
//     frames by default (client.WithCodec opts out) and drains every
//     response body so keep-alive connections survive error storms.
//   - internal/cluster — distributed sketchd (cmd/sketchctl is the
//     operator CLI): static-membership rendezvous-hash placement puts
//     every keyspace on an owner plus R−1 replicas, the owner ships
//     snapshot envelopes to replicas on a cadence (two new fuzzed wire
//     frame types, ship and ship-ack; replicas replace rather than fold,
//     ordered by per-key sequence numbers), a probing failure detector
//     exchanges route frames (probe + membership gossip in one) and
//     fails ownership over by re-reading the ranking without the dead
//     node, any member 307-redirects tenant traffic to the owner, and
//     global queries answer from the owner or — for independently
//     ingesting fleets — from the additive cross-node merge
//     (POST /cluster/query?merge=all). Replicas are bounded-stale by the
//     ship interval; TestClusterFailoverE2E SIGKILLs a keyspace owner
//     under feeder load across three real processes and asserts the ε
//     envelopes hold through failover. The robust policies
//     make the shared endpoint safe to query adaptively — the paper's
//     threat model, realized as a service.
//   - internal/stream, internal/game, internal/adversary — stream
//     generators, the adaptive adversary game loop, and concrete attacks.
//     The game's Target interface runs the same adversaries against a
//     bare estimator, a sharded engine, or a sketchd tenant over HTTP
//     (client.NewGameTarget); `go run ./cmd/experiments campaign` sweeps
//     adversary × target × sketch × policy × model (tenants declared
//     over the v2 surface) and emits a JSON report. The Pump adversary
//     drives the signed-update cells: it oscillates a heavy coordinate
//     through genuine deletions, adapting to the published estimates
//     while staying inside the declared stream class.
//     TestAdaptiveAMSCampaignOverHTTP (attack_e2e_test.go) is the
//     end-to-end regression: the adaptive AMS attack breaks a static f2
//     tenant over loopback HTTP while ring, switching and paths guard
//     tenants on the same stream stay within ε;
//     TestAdaptivePointQueryCampaignOverHTTP (pointquery_e2e_test.go)
//     is its point-query counterpart — a greedy collision finder breaks
//     a static countsketch tenant's point queries via its own answers
//     while the Theorem 6.5 frozen-ring tenant holds ε·‖f‖₂; and
//     TestTurnstileModelCampaignOverHTTP (turnstile_e2e_test.go) is the
//     model-axis regression — a model=turnstile tenant holds its moment
//     envelope through a deletion-heavy Pump campaign that the
//     insertion-only tenant rejects at the first negative delta.
//
// Verify the tree with the tier-1 command:
//
//	go build ./... && go test ./...
package repro
